#include "tevot/features.hpp"

#include <stdexcept>

namespace tevot::core {

void FeatureEncoder::encode(std::uint32_t a, std::uint32_t b,
                            std::uint32_t prev_a, std::uint32_t prev_b,
                            const liberty::Corner& corner,
                            std::span<float> out) const {
  if (out.size() != featureCount()) {
    throw std::invalid_argument("FeatureEncoder::encode: bad output size");
  }
  std::size_t at = 0;
  auto emitWord = [&](std::uint32_t word) {
    for (int i = 0; i < 32; ++i) {
      out[at++] = static_cast<float>((word >> i) & 1u);
    }
  };
  emitWord(a);
  emitWord(b);
  if (include_history_) {
    emitWord(a ^ prev_a);
    emitWord(b ^ prev_b);
  }
  out[at++] = static_cast<float>(corner.voltage);
  out[at++] = static_cast<float>(corner.temperature);
}

void FeatureEncoder::encodeSample(const dta::DtaSample& sample,
                                  const liberty::Corner& corner,
                                  std::span<float> out) const {
  encode(sample.a, sample.b, sample.prev_a, sample.prev_b, corner, out);
}

std::string FeatureEncoder::featureName(std::size_t index) const {
  if (index >= featureCount()) {
    throw std::out_of_range("FeatureEncoder::featureName: bad index");
  }
  const std::size_t word = index / 32;
  const std::size_t bit = index % 32;
  if (include_history_) {
    switch (word) {
      case 0:
        return "a[" + std::to_string(bit) + "]";
      case 1:
        return "b[" + std::to_string(bit) + "]";
      case 2:
        return "tog_a[" + std::to_string(bit) + "]";
      case 3:
        return "tog_b[" + std::to_string(bit) + "]";
      default:
        return bit == 0 ? "V" : "T";
    }
  }
  switch (word) {
    case 0:
      return "a[" + std::to_string(bit) + "]";
    case 1:
      return "b[" + std::to_string(bit) + "]";
    default:
      return bit == 0 ? "V" : "T";
  }
}

std::vector<float> FeatureEncoder::encodeVec(
    std::uint32_t a, std::uint32_t b, std::uint32_t prev_a,
    std::uint32_t prev_b, const liberty::Corner& corner) const {
  std::vector<float> out(featureCount());
  encode(a, b, prev_a, prev_b, corner, out);
  return out;
}

}  // namespace tevot::core

#include "tevot/operating_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace tevot::core {

OperatingGrid OperatingGrid::paper() { return OperatingGrid{}; }

int OperatingGrid::voltagePoints() const {
  return static_cast<int>(std::lround((v_end - v_start) / v_step)) + 1;
}

int OperatingGrid::temperaturePoints() const {
  return static_cast<int>(std::lround((t_end - t_start) / t_step)) + 1;
}

std::vector<liberty::Corner> OperatingGrid::corners() const {
  std::vector<liberty::Corner> out;
  const int nv = voltagePoints();
  const int nt = temperaturePoints();
  out.reserve(static_cast<std::size_t>(nv) * static_cast<std::size_t>(nt));
  for (int vi = 0; vi < nv; ++vi) {
    for (int ti = 0; ti < nt; ++ti) {
      out.push_back(liberty::Corner{v_start + v_step * vi,
                                    t_start + t_step * ti});
    }
  }
  return out;
}

std::vector<liberty::Corner> OperatingGrid::subsampled(int nv,
                                                       int nt) const {
  if (nv < 1 || nt < 1) {
    throw std::invalid_argument("OperatingGrid::subsampled: bad counts");
  }
  std::vector<liberty::Corner> out;
  out.reserve(static_cast<std::size_t>(nv) * static_cast<std::size_t>(nt));
  for (int vi = 0; vi < nv; ++vi) {
    const double v =
        nv == 1 ? v_start : v_start + (v_end - v_start) * vi / (nv - 1);
    for (int ti = 0; ti < nt; ++ti) {
      const double t =
          nt == 1 ? t_start : t_start + (t_end - t_start) * ti / (nt - 1);
      // Snap to the underlying grid steps so subsampled corners are
      // actual Table I conditions.
      const double vs =
          v_start + v_step * std::lround((v - v_start) / v_step);
      const double ts =
          t_start + t_step * std::lround((t - t_start) / t_step);
      out.push_back(liberty::Corner{vs, ts});
    }
  }
  return out;
}

}  // namespace tevot::core

#include "tevot/evaluate.hpp"

namespace tevot::core {

EvalOutcome evaluateOnTrace(ErrorModel& model, const dta::DtaTrace& trace,
                            double tclk_ps) {
  EvalOutcome outcome;
  PredictionContext context;
  context.corner = trace.corner;
  context.tclk_ps = tclk_ps;
  for (const dta::DtaSample& sample : trace.samples) {
    context.a = sample.a;
    context.b = sample.b;
    context.prev_a = sample.prev_a;
    context.prev_b = sample.prev_b;
    const bool truth = sample.timingError(tclk_ps);
    const bool predicted = model.predictError(context);
    ++outcome.cycles;
    if (truth) ++outcome.true_errors;
    if (predicted) ++outcome.predicted_errors;
    if (truth == predicted) {
      ++outcome.matched;
    } else if (predicted) {
      ++outcome.false_positives;
    } else {
      ++outcome.false_negatives;
    }
  }
  return outcome;
}

EvalOutcome mergeOutcomes(std::span<const EvalOutcome> outcomes) {
  EvalOutcome merged;
  for (const EvalOutcome& outcome : outcomes) {
    merged.cycles += outcome.cycles;
    merged.matched += outcome.matched;
    merged.true_errors += outcome.true_errors;
    merged.predicted_errors += outcome.predicted_errors;
    merged.false_positives += outcome.false_positives;
    merged.false_negatives += outcome.false_negatives;
  }
  return merged;
}

}  // namespace tevot::core

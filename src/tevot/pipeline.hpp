// End-to-end experiment pipeline glue.
//
// FuContext bundles an FU netlist with the timing library and VT
// model and memoizes per-corner annotation (the SDF-per-corner step)
// and characterization, so benches and examples express experiments
// as "characterize workload W at corner C" without repeating the flow
// plumbing. trainModelSuite() trains TEVoT plus all three baselines
// from the same training traces, mirroring the paper's setup.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>

#include "circuits/fu.hpp"
#include "dta/dta.hpp"
#include "liberty/corner.hpp"
#include "sta/sta.hpp"
#include "tevot/baselines.hpp"
#include "tevot/model.hpp"

namespace tevot::core {

class FuContext {
 public:
  explicit FuContext(circuits::FuKind kind,
                     liberty::CellLibrary library =
                         liberty::CellLibrary::defaultLibrary(),
                     liberty::VtModel vt_model = liberty::VtModel());

  circuits::FuKind kind() const { return kind_; }
  const netlist::Netlist& netlist() const { return netlist_; }
  const liberty::CellLibrary& library() const { return library_; }
  const liberty::VtModel& vtModel() const { return vt_model_; }

  /// Per-corner annotated delays (memoized; the in-memory SDF).
  /// Thread-safe: concurrent callers for any mix of corners may race
  /// on a cold cache, and each gets a stable reference (std::map
  /// nodes never move).
  const liberty::CornerDelays& delaysAt(const liberty::Corner& corner);

  /// STA critical-path delay at a corner [ps].
  double staCriticalPathPs(const liberty::Corner& corner);

  /// DTA characterization of a workload at a corner.
  dta::DtaTrace characterize(const liberty::Corner& corner,
                             const dta::Workload& workload,
                             const dta::DtaOptions& options = {});

  /// Job for dta::characterizeAll resolving delays through this
  /// context's corner cache on the worker thread. `workload` (and
  /// this context) must outlive the characterizeAll call.
  dta::CharacterizeJob characterizeJob(const liberty::Corner& corner,
                                       const dta::Workload& workload,
                                       const dta::DtaOptions& options = {});

 private:
  circuits::FuKind kind_;
  netlist::Netlist netlist_;
  liberty::CellLibrary library_;
  liberty::VtModel vt_model_;
  /// Guards delay_cache_ (shared: lookup, exclusive: annotate+insert).
  std::shared_mutex delay_mutex_;
  std::map<std::pair<int, int>, liberty::CornerDelays> delay_cache_;
};

/// TEVoT plus the three baselines, trained/calibrated together.
struct ModelSuite {
  TevotModel tevot;
  TevotModel tevot_nh;
  DelayBasedModel delay_based;
  TerBasedModel ter_based;

  /// Views as the common ErrorModel interface, in the paper's
  /// Table III column order: TEVoT, Delay-based, TER-based, TEVoT-NH.
  std::vector<std::unique_ptr<ErrorModel>> errorModels() const;
};

/// Trains all four models from the same training traces. A pool
/// parallelizes the forests' per-tree fitting; results are
/// bit-identical for any thread count.
ModelSuite trainModelSuite(std::span<const dta::DtaTrace> traces,
                           util::Rng& rng,
                           const ml::ForestParams& forest_params = {},
                           util::ThreadPool* pool = nullptr);

}  // namespace tevot::core

// Minimal Standard Delay Format (SDF) writer and parser.
//
// The paper's flow emits one SDF file per (V,T) corner from PrimeTime
// and back-annotates gate-level simulation with it. We reproduce that
// file boundary: liberty::CornerDelays can be serialized to an
// SDF 3.0-style text file (header + one CELL/IOPATH block per gate)
// and parsed back bit-exactly (delays are printed with enough digits
// to round-trip).
//
// Supported subset: DELAYFILE header fields (SDFVERSION, DESIGN,
// VOLTAGE, TEMPERATURE, TIMESCALE), per-gate CELL blocks with CELLTYPE,
// INSTANCE and a single ABSOLUTE IOPATH carrying (rise)(fall) triples
// with equal min:typ:max. This matches what the simulator consumes;
// interconnect delays, conditional paths and timing checks are out of
// scope and rejected by the parser.
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/corner.hpp"
#include "netlist/netlist.hpp"

namespace tevot::sdf {

/// Writes `delays` for `nl` as SDF text.
void writeSdf(std::ostream& os, const netlist::Netlist& nl,
              const liberty::CornerDelays& delays);

/// Convenience: SDF text as a string.
std::string toSdfString(const netlist::Netlist& nl,
                        const liberty::CornerDelays& delays);

/// Parses SDF text produced by writeSdf back into CornerDelays for the
/// same netlist. Throws std::runtime_error with a line-ish diagnostic
/// on malformed input, on a DESIGN name mismatch, on a gate-count
/// mismatch, or on a CELLTYPE that contradicts the netlist.
liberty::CornerDelays parseSdf(std::istream& is, const netlist::Netlist& nl);

liberty::CornerDelays parseSdfString(const std::string& text,
                                     const netlist::Netlist& nl);

/// Writes to / reads from a file path.
void writeSdfFile(const std::string& path, const netlist::Netlist& nl,
                  const liberty::CornerDelays& delays);
liberty::CornerDelays parseSdfFile(const std::string& path,
                                   const netlist::Netlist& nl);

}  // namespace tevot::sdf

#include "sdf/sdf.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tevot::sdf {
namespace {

std::string formatPs(double ps) {
  char buf[64];
  // 17 significant digits: doubles round-trip exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", ps);
  return buf;
}

/// Tiny S-expression-ish tokenizer over SDF text.
class Lexer {
 public:
  explicit Lexer(std::istream& is) : is_(is) {}

  /// Token kinds: "(", ")", or an atom (word/number/quoted string).
  std::string next() {
    skipSpace();
    const int c = is_.get();
    if (c == EOF) return {};
    if (c == '(' || c == ')') return std::string(1, static_cast<char>(c));
    if (c == '"') {
      std::string atom;
      int q;
      while ((q = is_.get()) != EOF && q != '"') {
        atom.push_back(static_cast<char>(q));
      }
      return atom;
    }
    std::string atom(1, static_cast<char>(c));
    while (true) {
      const int p = is_.peek();
      if (p == EOF || p == '(' || p == ')' ||
          std::isspace(static_cast<unsigned char>(p))) {
        break;
      }
      atom.push_back(static_cast<char>(is_.get()));
    }
    return atom;
  }

  std::string expect(const std::string& what) {
    std::string tok = next();
    if (tok.empty()) {
      throw std::runtime_error("SDF parse error: unexpected EOF, expected " +
                               what);
    }
    return tok;
  }

  void expectToken(const std::string& literal) {
    const std::string tok = expect("'" + literal + "'");
    if (tok != literal) {
      throw std::runtime_error("SDF parse error: expected '" + literal +
                               "', got '" + tok + "'");
    }
  }

 private:
  void skipSpace() {
    while (true) {
      const int p = is_.peek();
      if (p == EOF) return;
      if (std::isspace(static_cast<unsigned char>(p))) {
        is_.get();
        continue;
      }
      // // comments (not standard SDF but harmless to accept)
      if (p == '/') {
        is_.get();
        if (is_.peek() == '/') {
          std::string line;
          std::getline(is_, line);
          continue;
        }
        is_.unget();
        return;
      }
      return;
    }
  }

  std::istream& is_;
};

double parseDouble(const std::string& tok, const char* context) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(tok, &consumed);
    if (consumed != tok.size()) throw std::invalid_argument(tok);
    // stod happily parses "nan" and "inf"; a delay file carrying
    // either is garbage, never a valid annotation.
    if (!std::isfinite(value)) {
      throw std::runtime_error(
          std::string("SDF parse error: non-finite number '") + tok +
          "' in " + context);
    }
    return value;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("SDF parse error: bad number '") +
                             tok + "' in " + context);
  }
}

/// Parses "(v:v:v)" with the opening paren already consumed by caller
/// logic; here we consume from "(" through ")" and return typ.
double parseTriple(Lexer& lex, const char* context) {
  lex.expectToken("(");
  const std::string triple = lex.expect("min:typ:max triple");
  lex.expectToken(")");
  const std::size_t first = triple.find(':');
  const std::size_t second = triple.rfind(':');
  if (first == std::string::npos || second == first) {
    throw std::runtime_error(
        std::string("SDF parse error: malformed triple in ") + context);
  }
  const double min = parseDouble(triple.substr(0, first), context);
  const double typ =
      parseDouble(triple.substr(first + 1, second - first - 1), context);
  const double max = parseDouble(triple.substr(second + 1), context);
  if (min != typ || typ != max) {
    throw std::runtime_error(
        std::string("SDF parse error: unequal min:typ:max in ") + context);
  }
  return typ;
}

}  // namespace

void writeSdf(std::ostream& os, const netlist::Netlist& nl,
              const liberty::CornerDelays& delays) {
  if (delays.gateCount() != nl.gateCount()) {
    throw std::invalid_argument("writeSdf: delay annotation mismatch");
  }
  os << "(DELAYFILE\n";
  os << "  (SDFVERSION \"3.0\")\n";
  os << "  (DESIGN \"" << nl.name() << "\")\n";
  os << "  (VOLTAGE " << formatPs(delays.corner.voltage) << ":"
     << formatPs(delays.corner.voltage) << ":"
     << formatPs(delays.corner.voltage) << ")\n";
  os << "  (TEMPERATURE " << formatPs(delays.corner.temperature) << ":"
     << formatPs(delays.corner.temperature) << ":"
     << formatPs(delays.corner.temperature) << ")\n";
  os << "  (TIMESCALE 1ps)\n";
  for (netlist::GateId g = 0; g < nl.gateCount(); ++g) {
    const netlist::Gate& gate = nl.gate(g);
    os << "  (CELL\n";
    os << "    (CELLTYPE \"" << netlist::cellName(gate.kind) << "\")\n";
    os << "    (INSTANCE g" << g << ")\n";
    os << "    (DELAY (ABSOLUTE\n";
    os << "      (IOPATH * " << nl.netDisplayName(gate.out) << " ("
       << formatPs(delays.rise_ps[g]) << ":" << formatPs(delays.rise_ps[g])
       << ":" << formatPs(delays.rise_ps[g]) << ") ("
       << formatPs(delays.fall_ps[g]) << ":" << formatPs(delays.fall_ps[g])
       << ":" << formatPs(delays.fall_ps[g]) << "))\n";
    os << "    ))\n";
    os << "  )\n";
  }
  os << ")\n";
}

std::string toSdfString(const netlist::Netlist& nl,
                        const liberty::CornerDelays& delays) {
  std::ostringstream os;
  writeSdf(os, nl, delays);
  return os.str();
}

liberty::CornerDelays parseSdf(std::istream& is, const netlist::Netlist& nl) {
  Lexer lex(is);
  liberty::CornerDelays delays;
  delays.rise_ps.assign(nl.gateCount(), 0.0);
  delays.fall_ps.assign(nl.gateCount(), 0.0);
  std::vector<bool> seen(nl.gateCount(), false);

  lex.expectToken("(");
  lex.expectToken("DELAYFILE");
  std::size_t cells_seen = 0;
  while (true) {
    std::string tok = lex.expect("header entry, CELL, or ')'");
    if (tok == ")") break;
    if (tok != "(") {
      throw std::runtime_error("SDF parse error: expected '(', got '" + tok +
                               "'");
    }
    const std::string keyword = lex.expect("section keyword");
    if (keyword == "SDFVERSION" || keyword == "TIMESCALE" ||
        keyword == "DESIGN") {
      const std::string value = lex.expect("header value");
      if (keyword == "DESIGN" && value != nl.name()) {
        throw std::runtime_error("SDF parse error: DESIGN '" + value +
                                 "' does not match netlist '" + nl.name() +
                                 "'");
      }
      lex.expectToken(")");
    } else if (keyword == "VOLTAGE" || keyword == "TEMPERATURE") {
      const std::string triple = lex.expect("triple");
      const std::size_t colon = triple.find(':');
      const double value =
          parseDouble(colon == std::string::npos ? triple
                                                 : triple.substr(0, colon),
                      keyword.c_str());
      if (keyword == "VOLTAGE") {
        delays.corner.voltage = value;
      } else {
        delays.corner.temperature = value;
      }
      lex.expectToken(")");
    } else if (keyword == "CELL") {
      // (CELLTYPE "...") (INSTANCE gN) (DELAY (ABSOLUTE (IOPATH ...)))
      lex.expectToken("(");
      lex.expectToken("CELLTYPE");
      const std::string celltype = lex.expect("cell type");
      lex.expectToken(")");
      lex.expectToken("(");
      lex.expectToken("INSTANCE");
      const std::string instance = lex.expect("instance name");
      lex.expectToken(")");
      if (instance.size() < 2 || instance[0] != 'g') {
        throw std::runtime_error("SDF parse error: bad instance '" +
                                 instance + "'");
      }
      netlist::GateId gate_id = 0;
      try {
        std::size_t consumed = 0;
        const unsigned long parsed = std::stoul(instance.substr(1), &consumed);
        if (consumed != instance.size() - 1) {
          throw std::invalid_argument(instance);
        }
        gate_id = static_cast<netlist::GateId>(parsed);
      } catch (const std::exception&) {
        throw std::runtime_error("SDF parse error: bad instance '" +
                                 instance + "'");
      }
      if (gate_id >= nl.gateCount()) {
        throw std::runtime_error("SDF parse error: instance '" + instance +
                                 "' not in netlist");
      }
      if (seen[gate_id]) {
        throw std::runtime_error("SDF parse error: duplicate instance '" +
                                 instance + "'");
      }
      seen[gate_id] = true;
      netlist::CellKind kind;
      if (!netlist::cellFromName(celltype, kind) ||
          kind != nl.gate(gate_id).kind) {
        throw std::runtime_error("SDF parse error: CELLTYPE '" + celltype +
                                 "' contradicts netlist for " + instance);
      }
      lex.expectToken("(");
      lex.expectToken("DELAY");
      lex.expectToken("(");
      lex.expectToken("ABSOLUTE");
      lex.expectToken("(");
      lex.expectToken("IOPATH");
      lex.expect("input port spec");   // "*"
      lex.expect("output port name");  // display name, unused
      delays.rise_ps[gate_id] = parseTriple(lex, "IOPATH rise");
      delays.fall_ps[gate_id] = parseTriple(lex, "IOPATH fall");
      lex.expectToken(")");  // IOPATH
      lex.expectToken(")");  // ABSOLUTE
      lex.expectToken(")");  // DELAY
      lex.expectToken(")");  // CELL
      ++cells_seen;
    } else {
      throw std::runtime_error("SDF parse error: unsupported section '" +
                               keyword + "'");
    }
  }
  if (cells_seen != nl.gateCount()) {
    throw std::runtime_error(
        "SDF parse error: cell count does not match netlist");
  }
  return delays;
}

liberty::CornerDelays parseSdfString(const std::string& text,
                                     const netlist::Netlist& nl) {
  std::istringstream is(text);
  return parseSdf(is, nl);
}

void writeSdfFile(const std::string& path, const netlist::Netlist& nl,
                  const liberty::CornerDelays& delays) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("writeSdfFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  writeSdf(os, nl, delays);
}

liberty::CornerDelays parseSdfFile(const std::string& path,
                                   const netlist::Netlist& nl) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("parseSdfFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  return parseSdf(is, nl);
}

}  // namespace tevot::sdf

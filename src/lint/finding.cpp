#include "lint/finding.hpp"

#include <cstdio>
#include <sstream>

namespace tevot::lint {

std::string_view severityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool severityFromName(std::string_view name, Severity& severity) {
  if (name == "info") severity = Severity::kInfo;
  else if (name == "warning") severity = Severity::kWarning;
  else if (name == "error") severity = Severity::kError;
  else return false;
  return true;
}

namespace {

std::size_t countSeverity(const std::vector<Finding>& findings,
                          Severity severity) {
  std::size_t n = 0;
  for (const Finding& finding : findings) {
    if (!finding.waived && finding.severity == severity) ++n;
  }
  return n;
}

}  // namespace

std::size_t LintReport::errorCount() const {
  return countSeverity(findings, Severity::kError);
}

std::size_t LintReport::warningCount() const {
  return countSeverity(findings, Severity::kWarning);
}

std::size_t LintReport::infoCount() const {
  return countSeverity(findings, Severity::kInfo);
}

std::size_t LintReport::waivedCount() const {
  std::size_t n = 0;
  for (const Finding& finding : findings) {
    if (finding.waived) ++n;
  }
  return n;
}

std::string LintReport::toText() const {
  std::ostringstream os;
  os << "lint " << design << ": " << rules_run.size() << " rules\n";
  for (const Finding& finding : findings) {
    os << "  " << finding.rule << " " << severityName(finding.severity)
       << (finding.waived ? " [waived]" : "") << " " << finding.location
       << ": " << finding.message << "\n";
  }
  os << "  " << errorCount() << " errors, " << warningCount()
     << " warnings, " << infoCount() << " infos, " << waivedCount()
     << " waived\n";
  return os.str();
}

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LintReport::toJson() const {
  std::ostringstream os;
  os << "{\n  \"design\": \"" << jsonEscape(design) << "\",\n";
  os << "  \"rules_run\": [";
  for (std::size_t i = 0; i < rules_run.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << jsonEscape(rules_run[i]) << '"';
  }
  os << "],\n";
  os << "  \"summary\": {\"errors\": " << errorCount()
     << ", \"warnings\": " << warningCount() << ", \"infos\": "
     << infoCount() << ", \"waived\": " << waivedCount() << "},\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << jsonEscape(finding.rule)
       << "\", \"severity\": \"" << severityName(finding.severity)
       << "\", \"location\": \"" << jsonEscape(finding.location)
       << "\", \"waived\": " << (finding.waived ? "true" : "false")
       << ", \"message\": \"" << jsonEscape(finding.message) << "\"}";
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

}  // namespace tevot::lint

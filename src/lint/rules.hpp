// Rule-based static analysis over a netlist and its timing artifacts.
//
// This is the repo's analogue of the lint/STA-signoff checks a
// commercial flow (Verilator lint, PrimeTime consistency checks) runs
// before trusting a netlist + .lib + SDF triple: the TEVoT pipeline
// silently assumes these artifacts are mutually consistent, and these
// rules prove it statically before any simulation cycle is spent.
//
// Three rule families (catalog in DESIGN.md §5d):
//   NLxxx  structural netlist checks (dangling nets, unused inputs,
//          constant-foldable logic, duplicate gates, buffer chains,
//          unreachable gates)
//   XAxxx  cross-artifact consistency (Liberty coverage per corner,
//          SDF arc coverage, SDF-vs-Liberty agreement, V/T-model
//          voltage monotonicity)
//   STxxx  static-timing reports (per-output critical-path arrivals,
//          clock-budget violations)
//
// Rules run independently over a shared read-only LintContext; a rule
// that throws is converted into an error finding on that rule rather
// than aborting the run. Artifacts absent from the context make the
// rules needing them no-ops, so `runLint` degrades gracefully from a
// full artifact triple down to a bare netlist.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "liberty/cell_library.hpp"
#include "liberty/corner.hpp"
#include "liberty/vt_model.hpp"
#include "lint/finding.hpp"
#include "lint/waiver.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace tevot::lint {

/// Read-only inputs of one lint run. Only `netlist` is mandatory.
struct LintContext {
  const netlist::Netlist* netlist = nullptr;

  // Cross-artifact inputs (optional).
  const liberty::CellLibrary* library = nullptr;
  const liberty::VtModel* vt_model = nullptr;
  /// Operating corners the artifacts must cover; XA001/XA004 check
  /// every one of these.
  std::vector<liberty::Corner> corners;
  /// Back-annotated delays parsed from an SDF file; XA002/XA003 check
  /// them against the netlist and the Liberty-derived delays.
  const liberty::CornerDelays* sdf_delays = nullptr;

  /// XA003: |sdf - liberty| must be within abs + rel * |liberty| [ps].
  double sdf_tolerance_abs_ps = 1e-3;
  double sdf_tolerance_rel = 1e-6;

  /// ST002: flag outputs whose critical-path arrival exceeds this
  /// budget [ps] at the slowest context corner; 0 disables the check.
  double clock_budget_ps = 0.0;
};

/// One registered rule. `run` appends findings; it must not mutate
/// anything reachable from the context.
struct Rule {
  std::string id;
  Severity severity = Severity::kWarning;
  std::string title;
  std::function<void(const LintContext&, std::vector<Finding>&)> run;
};

/// The built-in rule catalog, in rule-ID order.
std::span<const Rule> builtinRules();

/// Looks up a built-in rule by ID; nullptr when unknown.
const Rule* findRule(std::string_view id);

/// Runs every built-in rule over `ctx`, applies `waivers` (when given)
/// to the findings, and appends a WV001 info finding per unused
/// waiver. Throws std::invalid_argument when ctx.netlist is null.
///
/// A `pool` parallelizes rule execution: rules write into per-rule
/// slots concatenated in catalog order, and the waiver pass runs
/// serially afterwards, so the report is byte-identical to the serial
/// run at any thread count (rules are pure over the shared read-only
/// context).
LintReport runLint(const LintContext& ctx, WaiverSet* waivers = nullptr,
                   util::ThreadPool* pool = nullptr);

/// Canonical location strings used by rules and waiver files.
std::string netLocation(const netlist::Netlist& nl, netlist::NetId net);
std::string gateLocation(const netlist::Netlist& nl, netlist::GateId gate);

}  // namespace tevot::lint

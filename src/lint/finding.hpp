// Lint findings and the aggregated report.
//
// A Finding is one diagnostic from one rule: a stable rule ID
// ("NL001"), a severity, a location string naming the offending
// net/gate/artifact, and a human message. Rules append Findings into
// a LintReport, which knows how to render itself as text (for
// terminals) and JSON (for CI artifacts), and how to summarize
// severity counts with waived findings excluded from the verdict.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tevot::lint {

enum class Severity { kInfo, kWarning, kError };

/// "info" / "warning" / "error".
std::string_view severityName(Severity severity);

/// Parses a name produced by severityName(); returns false on failure.
bool severityFromName(std::string_view name, Severity& severity);

/// One diagnostic. `location` is the waiver-matching key: "net:<name>"
/// for nets, "gate:<output-net-name>" for gates, "cell:<CELL>" for
/// library-level findings, and "-" for design-wide findings.
struct Finding {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string location;
  std::string message;
  bool waived = false;
};

/// Aggregated result of one lint run over one design.
struct LintReport {
  std::string design;
  std::vector<std::string> rules_run;
  std::vector<Finding> findings;

  /// Severity counts over non-waived findings.
  std::size_t errorCount() const;
  std::size_t warningCount() const;
  std::size_t infoCount() const;
  /// Findings suppressed by a waiver (any severity).
  std::size_t waivedCount() const;

  /// No un-waived error-severity findings.
  bool clean() const { return errorCount() == 0; }

  /// Terminal rendering: one line per finding plus a summary line.
  std::string toText() const;

  /// JSON object rendering (stable key order, findings in emit order):
  /// {"design":..., "rules_run":[...], "summary":{...}, "findings":[...]}
  std::string toJson() const;
};

/// Escapes a string for embedding in a JSON string literal.
std::string jsonEscape(std::string_view text);

}  // namespace tevot::lint

#include "lint/waiver.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tevot::lint {

bool waiverPatternMatches(std::string_view pattern,
                          std::string_view location) {
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
    return location.substr(0, prefix.size()) == prefix;
  }
  return pattern == location;
}

WaiverSet WaiverSet::parse(std::istream& is) {
  WaiverSet set;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string comment;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      comment = line.substr(hash + 1);
      // Trim the comment's surrounding whitespace.
      const std::size_t first = comment.find_first_not_of(" \t");
      comment = first == std::string::npos ? "" : comment.substr(first);
      const std::size_t last = comment.find_last_not_of(" \t\r");
      if (last != std::string::npos) comment.resize(last + 1);
      line.resize(hash);
    }
    std::istringstream fields(line);
    Waiver waiver;
    waiver.comment = std::move(comment);
    waiver.line = line_no;
    if (!(fields >> waiver.rule)) continue;  // blank / comment-only
    if (!(fields >> waiver.pattern)) {
      throw std::runtime_error("waiver line " + std::to_string(line_no) +
                               ": expected `<rule> <location>`, got only `" +
                               waiver.rule + "`");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::runtime_error("waiver line " + std::to_string(line_no) +
                               ": unexpected trailing field `" + extra + "`");
    }
    set.waivers_.push_back(std::move(waiver));
  }
  set.used_.assign(set.waivers_.size(), false);
  return set;
}

WaiverSet WaiverSet::parseString(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

WaiverSet WaiverSet::parseFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open waiver file " + path + ": " +
                             std::strerror(errno));
  }
  return parse(is);
}

bool WaiverSet::matches(const Finding& finding) {
  bool matched = false;
  for (std::size_t i = 0; i < waivers_.size(); ++i) {
    if (waivers_[i].rule == finding.rule &&
        waiverPatternMatches(waivers_[i].pattern, finding.location)) {
      used_[i] = true;
      matched = true;
    }
  }
  return matched;
}

std::vector<Waiver> WaiverSet::unused() const {
  std::vector<Waiver> result;
  for (std::size_t i = 0; i < waivers_.size(); ++i) {
    if (!used_[i]) result.push_back(waivers_[i]);
  }
  return result;
}

}  // namespace tevot::lint

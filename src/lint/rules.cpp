#include "lint/rules.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sta/sta.hpp"

namespace tevot::lint {

using netlist::CellKind;
using netlist::Gate;
using netlist::GateId;
using netlist::kNoGate;
using netlist::NetId;
using netlist::Netlist;

std::string netLocation(const Netlist& nl, NetId net) {
  return "net:" + nl.netDisplayName(net);
}

std::string gateLocation(const Netlist& nl, GateId gate) {
  return "gate:" + nl.netDisplayName(nl.gate(gate).out);
}

namespace {

std::string formatPs(double ps) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ps);
  return buf;
}

std::string cornerText(const liberty::Corner& corner) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.2f V, %.0f C)", corner.voltage,
                corner.temperature);
  return buf;
}

void emit(std::vector<Finding>& findings, std::string location,
          std::string message) {
  findings.push_back(
      Finding{{}, Severity::kWarning, std::move(location),
              std::move(message), false});
}

/// Cell kinds instantiated by at least one gate of the netlist,
/// constants excluded (they carry no timing arc).
std::vector<CellKind> usedLogicKinds(const Netlist& nl) {
  const std::vector<std::size_t> counts = nl.kindCounts();
  std::vector<CellKind> kinds;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const CellKind kind = static_cast<CellKind>(k);
    if (counts[k] > 0 && netlist::cellFanin(kind) > 0) kinds.push_back(kind);
  }
  return kinds;
}

/// Marks every gate lying on some path to a primary output.
std::vector<bool> reachableFromOutputs(const Netlist& nl) {
  std::vector<bool> net_seen(nl.netCount(), false);
  std::vector<bool> gate_reached(nl.gateCount(), false);
  std::vector<NetId> stack(nl.outputs().begin(), nl.outputs().end());
  while (!stack.empty()) {
    const NetId net = stack.back();
    stack.pop_back();
    if (net_seen[net]) continue;
    net_seen[net] = true;
    const GateId driver = nl.net(net).driver;
    if (driver == kNoGate) continue;
    gate_reached[driver] = true;
    const Gate& gate = nl.gate(driver);
    for (int i = 0; i < gate.fanin; ++i) stack.push_back(gate.in[i]);
  }
  return gate_reached;
}

// ---- NLxxx structural rules ---------------------------------------

void ruleDanglingNet(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  std::unordered_set<NetId> output_nets(nl.outputs().begin(),
                                        nl.outputs().end());
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const NetId net = nl.gate(g).out;
    if (nl.fanout(net).empty() && output_nets.count(net) == 0) {
      emit(out, gateLocation(nl, g),
           std::string(netlist::cellName(nl.gate(g).kind)) +
               " output drives no gate and is not a primary output");
    }
  }
}

void ruleUnusedInput(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  std::unordered_set<NetId> output_nets(nl.outputs().begin(),
                                        nl.outputs().end());
  for (const NetId in : nl.inputs()) {
    if (nl.fanout(in).empty() && output_nets.count(in) == 0) {
      emit(out, netLocation(nl, in),
           "primary input feeds no gate and no primary output");
    }
  }
}

void ruleConstFoldable(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  // known[net] in {-1 unknown, 0, 1}; only direct const-gate outputs
  // count — the rule flags gates foldable in ONE step, so each round
  // of "fix, re-lint" peels one layer of a constant cone.
  std::vector<int> known(nl.netCount(), -1);
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind == CellKind::kConst0) known[gate.out] = 0;
    if (gate.kind == CellKind::kConst1) known[gate.out] = 1;
  }
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.fanin == 0) continue;
    bool any_const = false;
    for (int i = 0; i < gate.fanin; ++i) {
      any_const = any_const || known[gate.in[i]] != -1;
    }
    if (!any_const) continue;
    // The gate folds when its output is invariant over every
    // assignment of the non-constant inputs.
    int folded = -1;
    bool constant = true;
    const int free_combos = 1 << gate.fanin;
    for (int combo = 0; combo < free_combos && constant; ++combo) {
      bool in[3] = {false, false, false};
      bool skip = false;
      for (int i = 0; i < gate.fanin; ++i) {
        const bool bit = ((combo >> i) & 1) != 0;
        if (known[gate.in[i]] != -1 &&
            bit != (known[gate.in[i]] == 1)) {
          skip = true;  // contradicts the known constant value
          break;
        }
        in[i] = bit;
      }
      if (skip) continue;
      const int value = netlist::evalCell(gate.kind, in[0], in[1], in[2]);
      if (folded == -1) folded = value;
      constant = folded == value;
    }
    if (constant && folded != -1) {
      emit(out, gateLocation(nl, g),
           std::string(netlist::cellName(gate.kind)) +
               " with constant input(s) always evaluates to " +
               std::to_string(folded) + "; fold to a constant net");
    }
  }
}

void ruleDuplicateGate(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  auto commutative = [](CellKind kind) {
    switch (kind) {
      case CellKind::kAnd2: case CellKind::kOr2: case CellKind::kNand2:
      case CellKind::kNor2: case CellKind::kXor2: case CellKind::kXnor2:
      case CellKind::kAnd3: case CellKind::kOr3: case CellKind::kNand3:
      case CellKind::kNor3: case CellKind::kXor3: case CellKind::kMaj3:
        return true;
      default:
        return false;
    }
  };
  struct Key {
    CellKind kind;
    NetId in[3];
    bool operator==(const Key& other) const {
      return kind == other.kind && in[0] == other.in[0] &&
             in[1] == other.in[1] && in[2] == other.in[2];
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t x = static_cast<std::uint64_t>(key.kind);
      for (const NetId net : key.in) {
        x = (x ^ net) * 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 30;
      }
      return static_cast<std::size_t>(x);
    }
  };
  std::unordered_map<Key, GateId, KeyHash> seen;
  seen.reserve(nl.gateCount());
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.fanin == 0) continue;  // consts are deduplicated already
    Key key{gate.kind, {gate.in[0], gate.in[1], gate.in[2]}};
    if (commutative(gate.kind)) {
      // Tiny sorting network (fanin is 2 or 3), canonicalizing the
      // operand order of symmetric cells.
      auto swapIf = [](NetId& x, NetId& y) {
        if (y < x) std::swap(x, y);
      };
      swapIf(key.in[0], key.in[1]);
      if (gate.fanin == 3) {
        swapIf(key.in[1], key.in[2]);
        swapIf(key.in[0], key.in[1]);
      }
    }
    const auto [it, inserted] = seen.emplace(key, g);
    if (!inserted) {
      emit(out, gateLocation(nl, g),
           std::string(netlist::cellName(gate.kind)) +
               " computes the same function of the same nets as " +
               gateLocation(nl, it->second).substr(5) +
               "; share one instance");
    }
  }
}

void ruleBufferChain(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  std::unordered_set<NetId> output_nets(nl.outputs().begin(),
                                        nl.outputs().end());
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.kind != CellKind::kBuf && gate.kind != CellKind::kInv) continue;
    const NetId mid = gate.in[0];
    const GateId driver = nl.net(mid).driver;
    if (driver == kNoGate || nl.gate(driver).kind != gate.kind) continue;
    // Only collapsible when the intermediate net serves nothing else.
    if (nl.fanout(mid).size() != 1 || output_nets.count(mid) != 0) continue;
    emit(out, gateLocation(nl, g),
         gate.kind == CellKind::kBuf
             ? "BUF fed by a single-fanout BUF; collapse the chain"
             : "INV fed by a single-fanout INV; the pair cancels out");
  }
}

void ruleUnreachableGate(const LintContext& ctx,
                         std::vector<Finding>& out) {
  const Netlist& nl = *ctx.netlist;
  const std::vector<bool> reached = reachableFromOutputs(nl);
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    if (!reached[g]) {
      emit(out, gateLocation(nl, g),
           std::string(netlist::cellName(nl.gate(g).kind)) +
               " lies in no primary-output cone");
    }
  }
}

// ---- XAxxx cross-artifact rules -----------------------------------

void ruleLibertyCoverage(const LintContext& ctx,
                         std::vector<Finding>& out) {
  if (ctx.library == nullptr || ctx.vt_model == nullptr ||
      ctx.corners.empty()) {
    return;
  }
  const Netlist& nl = *ctx.netlist;
  for (const CellKind kind : usedLogicKinds(nl)) {
    const std::string location =
        "cell:" + std::string(netlist::cellName(kind));
    const liberty::CellTiming& timing = ctx.library->timing(kind);
    if (timing.intrinsic_rise_ps <= 0.0 &&
        timing.intrinsic_fall_ps <= 0.0) {
      emit(out, location,
           "cell is instantiated but has no Liberty timing arc");
      continue;
    }
    const liberty::CellVtSensitivity& sensitivity =
        ctx.library->vtSensitivity(kind);
    for (const liberty::Corner& corner : ctx.corners) {
      try {
        const double scale = ctx.vt_model->scaleAdjusted(
            corner.voltage, corner.temperature, sensitivity.alpha_delta,
            sensitivity.mobility_delta);
        if (!std::isfinite(scale) || scale <= 0.0) {
          emit(out, location,
               "V/T scale factor at " + cornerText(corner) +
                   " is not a positive finite number");
        }
      } catch (const std::domain_error&) {
        emit(out, location,
             "corner " + cornerText(corner) +
                 " is infeasible for this cell (V does not exceed Vth)");
      }
    }
  }
}

void ruleSdfCoverage(const LintContext& ctx, std::vector<Finding>& out) {
  if (ctx.sdf_delays == nullptr) return;
  const Netlist& nl = *ctx.netlist;
  const liberty::CornerDelays& sdf = *ctx.sdf_delays;
  if (sdf.gateCount() != nl.gateCount() ||
      sdf.fall_ps.size() != nl.gateCount()) {
    emit(out, "-",
         "SDF annotates " + std::to_string(sdf.gateCount()) +
             " gates but the netlist has " +
             std::to_string(nl.gateCount()));
    return;
  }
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const double rise = sdf.rise_ps[g];
    const double fall = sdf.fall_ps[g];
    if (!std::isfinite(rise) || !std::isfinite(fall) || rise < 0.0 ||
        fall < 0.0) {
      emit(out, gateLocation(nl, g),
           "timing arc is unannotated or invalid (rise " + formatPs(rise) +
               " ps, fall " + formatPs(fall) + " ps)");
    }
  }
}

void ruleSdfVsLiberty(const LintContext& ctx, std::vector<Finding>& out) {
  if (ctx.sdf_delays == nullptr || ctx.library == nullptr ||
      ctx.vt_model == nullptr) {
    return;
  }
  const Netlist& nl = *ctx.netlist;
  const liberty::CornerDelays& sdf = *ctx.sdf_delays;
  if (sdf.gateCount() != nl.gateCount()) return;  // XA002's finding
  const liberty::CornerDelays ref = liberty::annotateCorner(
      nl, *ctx.library, *ctx.vt_model, sdf.corner);
  auto check = [&](GateId g, double got, double want, const char* arc) {
    const double tolerance =
        ctx.sdf_tolerance_abs_ps + ctx.sdf_tolerance_rel * std::abs(want);
    if (std::abs(got - want) > tolerance) {
      emit(out, gateLocation(nl, g),
           std::string(arc) + " delay disagrees with Liberty at " +
               cornerText(sdf.corner) + ": SDF " + formatPs(got) +
               " ps vs Liberty " + formatPs(want) + " ps");
    }
  };
  for (GateId g = 0; g < nl.gateCount(); ++g) {
    check(g, sdf.rise_ps[g], ref.rise_ps[g], "rise");
    check(g, sdf.fall_ps[g], ref.fall_ps[g], "fall");
  }
}

void ruleVtMonotonicity(const LintContext& ctx,
                        std::vector<Finding>& out) {
  if (ctx.vt_model == nullptr || ctx.corners.empty()) return;
  std::vector<double> voltages;
  std::vector<double> temperatures;
  for (const liberty::Corner& corner : ctx.corners) {
    voltages.push_back(corner.voltage);
    temperatures.push_back(corner.temperature);
  }
  auto uniqueSorted = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniqueSorted(voltages);
  uniqueSorted(temperatures);
  // Raising supply voltage must never slow a cell down — temperature
  // is allowed to flip sign (that is the paper's inverse temperature
  // dependence), voltage is not.
  constexpr double kSlack = 1e-9;
  struct Subject {
    std::string location;
    double alpha_delta;
    double mobility_delta;
  };
  std::vector<Subject> subjects = {{"vtmodel", 0.0, 0.0}};
  if (ctx.library != nullptr) {
    for (const CellKind kind : usedLogicKinds(*ctx.netlist)) {
      const liberty::CellVtSensitivity& s = ctx.library->vtSensitivity(kind);
      subjects.push_back({"cell:" + std::string(netlist::cellName(kind)),
                          s.alpha_delta, s.mobility_delta});
    }
  }
  for (const Subject& subject : subjects) {
    for (const double t : temperatures) {
      double prev_scale = 0.0;
      double prev_v = 0.0;
      bool have_prev = false;
      for (const double v : voltages) {
        double scale = 0.0;
        try {
          scale = ctx.vt_model->scaleAdjusted(
              v, t, subject.alpha_delta, subject.mobility_delta);
        } catch (const std::domain_error&) {
          continue;  // infeasible corner; XA001 reports it
        }
        if (have_prev && scale > prev_scale * (1.0 + kSlack)) {
          char msg[160];
          std::snprintf(msg, sizeof(msg),
                        "delay scale increases with voltage at %.0f C: "
                        "%.6f@%.2fV -> %.6f@%.2fV",
                        t, prev_scale, prev_v, scale, v);
          emit(out, subject.location, msg);
        }
        prev_scale = scale;
        prev_v = v;
        have_prev = true;
      }
    }
  }
}

// ---- STxxx static-timing rules ------------------------------------

void ruleCriticalPathReport(const LintContext& ctx,
                            std::vector<Finding>& out) {
  if (ctx.library == nullptr || ctx.vt_model == nullptr) return;
  const Netlist& nl = *ctx.netlist;
  const liberty::Corner nominal{ctx.vt_model->params().vnom,
                               ctx.vt_model->params().tnom_c};
  const liberty::CornerDelays delays =
      liberty::annotateCorner(nl, *ctx.library, *ctx.vt_model, nominal);
  const sta::StaResult sta = sta::analyze(nl, delays);
  const std::vector<int> levels = nl.gateLevels();
  for (const NetId net : nl.outputs()) {
    const GateId driver = nl.net(net).driver;
    const int depth = driver == kNoGate ? 0 : levels[driver];
    emit(out, netLocation(nl, net),
         "critical-path arrival " + formatPs(sta.arrival_ps[net]) +
             " ps, depth " + std::to_string(depth) + " levels at " +
             cornerText(nominal));
  }
}

void ruleClockBudget(const LintContext& ctx, std::vector<Finding>& out) {
  if (ctx.library == nullptr || ctx.vt_model == nullptr ||
      ctx.clock_budget_ps <= 0.0) {
    return;
  }
  const Netlist& nl = *ctx.netlist;
  std::vector<liberty::Corner> corners = ctx.corners;
  if (corners.empty()) {
    corners.push_back({ctx.vt_model->params().vnom,
                       ctx.vt_model->params().tnom_c});
  }
  // Worst arrival per output over every context corner: a budget must
  // hold at the slowest corner, not just at nominal.
  std::vector<double> worst(nl.outputs().size(), 0.0);
  std::vector<liberty::Corner> worst_corner(nl.outputs().size());
  for (const liberty::Corner& corner : corners) {
    const liberty::CornerDelays delays =
        liberty::annotateCorner(nl, *ctx.library, *ctx.vt_model, corner);
    const sta::StaResult sta = sta::analyze(nl, delays);
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      const double arrival = sta.arrival_ps[nl.outputs()[i]];
      if (arrival > worst[i]) {
        worst[i] = arrival;
        worst_corner[i] = corner;
      }
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    if (worst[i] > ctx.clock_budget_ps) {
      emit(out, netLocation(nl, nl.outputs()[i]),
           "critical-path arrival " + formatPs(worst[i]) + " ps at " +
               cornerText(worst_corner[i]) + " exceeds the " +
               formatPs(ctx.clock_budget_ps) + " ps clock budget");
    }
  }
}

const std::vector<Rule>& ruleCatalog() {
  static const std::vector<Rule> rules = {
      {"NL001", Severity::kWarning, "dangling driven net",
       ruleDanglingNet},
      {"NL002", Severity::kWarning, "unused primary input",
       ruleUnusedInput},
      {"NL003", Severity::kWarning, "constant-foldable gate",
       ruleConstFoldable},
      {"NL004", Severity::kInfo, "structurally duplicate gate",
       ruleDuplicateGate},
      {"NL005", Severity::kInfo, "collapsible buffer/inverter chain",
       ruleBufferChain},
      {"NL006", Severity::kWarning, "gate unreachable from outputs",
       ruleUnreachableGate},
      {"XA001", Severity::kError, "Liberty corner coverage",
       ruleLibertyCoverage},
      {"XA002", Severity::kError, "SDF timing-arc coverage",
       ruleSdfCoverage},
      {"XA003", Severity::kError, "SDF vs Liberty delay agreement",
       ruleSdfVsLiberty},
      {"XA004", Severity::kError, "V/T delay-scale voltage monotonicity",
       ruleVtMonotonicity},
      {"ST001", Severity::kInfo, "per-output critical-path report",
       ruleCriticalPathReport},
      {"ST002", Severity::kError, "clock-budget violation",
       ruleClockBudget},
  };
  return rules;
}

}  // namespace

std::span<const Rule> builtinRules() { return ruleCatalog(); }

const Rule* findRule(std::string_view id) {
  for (const Rule& rule : ruleCatalog()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

LintReport runLint(const LintContext& ctx, WaiverSet* waivers,
                   util::ThreadPool* pool) {
  if (ctx.netlist == nullptr) {
    throw std::invalid_argument("runLint: LintContext has no netlist");
  }
  LintReport report;
  report.design = ctx.netlist->name();
  const std::span<const Rule> rules = builtinRules();
  // Per-rule finding slots, filled independently (in parallel when a
  // pool is given) and concatenated in catalog order — the report is
  // byte-identical at any thread count. The per-rule try/catch keeps
  // exceptions inside each slot, so parallelFor never sees one.
  std::vector<std::vector<Finding>> slots(rules.size());
  const auto run_rule = [&](std::size_t i) {
    const Rule& rule = rules[i];
    std::vector<Finding>& findings = slots[i];
    try {
      rule.run(ctx, findings);
      for (Finding& finding : findings) {
        finding.rule = rule.id;
        finding.severity = rule.severity;
      }
    } catch (const std::exception& error) {
      findings.clear();
      findings.push_back(Finding{rule.id, Severity::kError, "-",
                                 std::string("rule failed: ") + error.what(),
                                 false});
    }
  };
  if (pool != nullptr && pool->threadCount() > 1) {
    pool->parallelFor(rules.size(), run_rule);
  } else {
    for (std::size_t i = 0; i < rules.size(); ++i) run_rule(i);
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    report.rules_run.push_back(rules[i].id);
    for (Finding& finding : slots[i]) {
      if (waivers != nullptr) finding.waived = waivers->matches(finding);
      report.findings.push_back(std::move(finding));
    }
  }
  if (waivers != nullptr) {
    for (const Waiver& waiver : waivers->unused()) {
      report.findings.push_back(Finding{
          "WV001", Severity::kInfo, waiver.rule + " " + waiver.pattern,
          "waiver (line " + std::to_string(waiver.line) +
              ") matched no finding; remove it",
          false});
    }
  }
  return report;
}

}  // namespace tevot::lint

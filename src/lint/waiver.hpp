// Waiver files: reviewed suppressions of known lint findings.
//
// Text format, one waiver per line:
//
//     # comment lines and blank lines are ignored
//     NL004 gate:sum_3       # exact rule + location
//     NL005 *                # waive a whole rule
//     XA003 gate:mul_*       # trailing-* glob on the location
//
// A waiver matches a finding when the rule ID is equal and the
// location pattern matches exactly or via a single trailing `*`
// wildcard. Matching findings stay in the report but are marked
// waived and excluded from the error verdict. Waivers that never
// matched anything are themselves reported (rule WV001), so stale
// suppressions rot visibly instead of silently.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.hpp"

namespace tevot::lint {

struct Waiver {
  std::string rule;
  std::string pattern;  ///< location, optionally ending in `*`
  std::string comment;  ///< trailing `# ...` text, if any
  int line = 0;         ///< 1-based line in the waiver file
};

/// Returns whether `pattern` matches `location` (exact, or prefix
/// match when the pattern ends in `*`).
bool waiverPatternMatches(std::string_view pattern,
                          std::string_view location);

class WaiverSet {
 public:
  WaiverSet() = default;

  /// Parses the waiver file format. Throws std::runtime_error with a
  /// line diagnostic on a malformed line.
  static WaiverSet parse(std::istream& is);
  static WaiverSet parseString(const std::string& text);
  /// Throws std::runtime_error (with path and errno text) when the
  /// file cannot be opened.
  static WaiverSet parseFile(const std::string& path);

  const std::vector<Waiver>& waivers() const { return waivers_; }

  /// Returns whether some waiver suppresses `finding`, marking that
  /// waiver used.
  bool matches(const Finding& finding);

  /// Waivers never consumed by matches() since construction.
  std::vector<Waiver> unused() const;

 private:
  std::vector<Waiver> waivers_;
  std::vector<bool> used_;
};

}  // namespace tevot::lint

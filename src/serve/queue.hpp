// Bounded MPMC admission queue with explicit rejection.
//
// The serving robustness rule: overload must surface as a typed SHED
// response, never a hidden unbounded queue or a dropped request.
// tryPush never blocks — a full (or closed) queue is the caller's cue
// to shed — while pop blocks until an item arrives or the queue is
// closed AND empty, so workers drain everything that was admitted.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tevot::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admit; false when full or closed (caller sheds).
  bool tryPush(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes; pending items remain poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tevot::serve

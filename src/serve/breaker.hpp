// Circuit breaker around one model backend.
//
// State machine (the classic three states):
//   CLOSED    requests flow; `failure_threshold` consecutive failures
//             trip the breaker OPEN.
//   OPEN      requests are rejected without touching the backend;
//             after `cooldown_ms` the next allow() transitions to
//             HALF_OPEN and admits a single probe.
//   HALF_OPEN exactly one probe is in flight; its success closes the
//             breaker, its failure re-opens it (fresh cooldown).
//
// Time is passed in by the caller (steady_clock::now() by default) so
// unit tests drive the cooldown deterministically without sleeping.
// All methods are thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace tevot::serve {

struct BreakerConfig {
  int failure_threshold = 5;     ///< consecutive failures to trip
  double cooldown_ms = 1000.0;   ///< OPEN dwell before the first probe
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {});

  /// Whether a request may proceed now; may transition OPEN→HALF_OPEN.
  bool allow(Clock::time_point now = Clock::now());
  void recordSuccess();
  void recordFailure(Clock::time_point now = Clock::now());

  State state() const;
  int consecutiveFailures() const;
  /// Times the breaker tripped OPEN (monotonic counter, for stats).
  std::uint64_t opens() const;

 private:
  BreakerConfig config_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  std::uint64_t opens_ = 0;
};

const char* breakerStateName(CircuitBreaker::State state);

}  // namespace tevot::serve

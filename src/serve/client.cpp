#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace tevot::serve {

util::Status LineClient::connectTo(int port, double recv_timeout_ms) {
  close();
  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Status::ioError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  if (recv_timeout_ms > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000.0);
    tv.tv_usec = static_cast<suseconds_t>(
        (recv_timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) *
        1000.0);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return util::Status::ioError("connect 127.0.0.1:" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
  }
  fd_ = std::move(fd);
  buffer_.clear();
  last_port_ = port;
  last_recv_timeout_ms_ = recv_timeout_ms;
  return util::Status::okStatus();
}

util::Status LineClient::reconnect(const ReconnectPolicy& policy) {
  if (last_port_ == 0) {
    return util::Status::invalidArgument(
        "reconnect: no prior successful connectTo()");
  }
  close();
  util::Status last = util::Status::ioError("reconnect: zero attempts");
  double backoff_ms = policy.initial_backoff_ms;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * policy.growth,
                            policy.max_backoff_ms);
    }
    last = connectTo(last_port_, last_recv_timeout_ms_);
    if (last.ok()) return last;
  }
  last.message += " (after " + std::to_string(policy.max_attempts) +
                  " reconnect attempts)";
  return last;
}

bool LineClient::sendLine(const std::string& line) {
  if (!fd_.valid()) return false;
  const std::string wire = line + "\n";
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd_.get(), wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineClient::readLine() {
  char chunk[1024];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (!fd_.valid()) return std::nullopt;
    if (buffer_.size() > kMaxResponseLineBytes) {
      close();  // unterminated over-cap line: poisoned stream
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineClient::closeSend() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

void LineClient::close() {
  fd_.reset();
  buffer_.clear();
}

}  // namespace tevot::serve

// Crash-safe model hot-reload: validate-then-swap.
//
// The registry owns the current immutable model set behind a
// mutex-guarded shared_ptr (a plain mutex rather than
// std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its reader
// path with relaxed ordering, which TSan cannot prove race-free).
// Every request snapshots the pointer once at admission
// and is served entirely from that snapshot, so a reload racing
// in-flight requests can never produce a mixed-model answer. reload()
// builds and validates a complete candidate set off to the side
// (TevotModel::validateForServing gates every model) and only then
// publishes it with one pointer swap; any failure — unreadable file,
// bad magic, truncated forest, failed canary, injected serve.reload
// fault — leaves the previous set serving untouched.
//
// Model directory layout: one "<fu>.model" file per functional unit
// (int_add.model, fp_mul.model, …), written by `tevot_cli train` /
// TevotModel::save. Units without a file are simply not served
// (MODEL_UNAVAILABLE), but at least one model must load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tevot/model.hpp"
#include "util/fault_injection.hpp"
#include "util/status.hpp"

namespace tevot::serve {

struct ModelSet {
  /// fu name -> trained model; immutable once published.
  std::map<std::string, core::TevotModel> models;
  std::uint64_t generation = 0;

  const core::TevotModel* find(const std::string& fu) const {
    const auto it = models.find(fu);
    return it == models.end() ? nullptr : &it->second;
  }
};

class ModelRegistry {
 public:
  /// `strict_verify` additionally gates every candidate model through
  /// verify::certifyModelForServing — interval certification over the
  /// whole operating box, not just point canaries — so a model whose
  /// guaranteed delay bound is broken (negative or non-finite anywhere
  /// in the box) is refused at reload while the previous set keeps
  /// serving.
  explicit ModelRegistry(std::string model_dir, bool strict_verify = false);

  /// Initial load; the server refuses to start when this fails.
  util::Status load() { return reload(nullptr); }

  /// Validate-then-swap reload from the model directory. `faults`
  /// (may be null) is consulted at the serve.reload point. On failure
  /// the previous set keeps serving and the error is returned.
  util::Status reload(util::FaultInjector* faults);

  /// The current immutable set (never null after a successful load).
  std::shared_ptr<const ModelSet> snapshot() const {
    const std::lock_guard<std::mutex> lock(current_mutex_);
    return current_;
  }

  std::uint64_t generation() const {
    const std::shared_ptr<const ModelSet> set = snapshot();
    return set == nullptr ? 0 : set->generation;
  }

  const std::string& modelDir() const { return model_dir_; }

 private:
  std::string model_dir_;
  bool strict_verify_ = false;
  std::mutex reload_mutex_;  ///< serializes concurrent reload()s
  mutable std::mutex current_mutex_;  ///< guards current_
  std::shared_ptr<const ModelSet> current_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace tevot::serve

#include "serve/breaker.hpp"

namespace tevot::serve {

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {}

bool CircuitBreaker::allow(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const double open_ms =
          std::chrono::duration<double, std::milli>(now - opened_at_)
              .count();
      if (open_ms < config_.cooldown_ms) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    }
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::recordSuccess() {
  const std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::recordFailure(Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to OPEN with a fresh cooldown.
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutiveFailures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

std::uint64_t CircuitBreaker::opens() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

const char* breakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace tevot::serve

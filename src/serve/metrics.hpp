// Serving counters and latency percentiles behind /health and /stats.
//
// Counters are relaxed atomics (monotonic, per-event increments from
// many threads); the latency histogram is mutex-guarded because
// LatencyHistogram itself is not synchronized. snapshot() is the one
// read surface — the control responses, the drain-time summary and
// the bench JSON all render from the same struct.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/stats.hpp"

namespace tevot::serve {

struct MetricsSnapshot {
  std::uint64_t connections = 0;
  std::uint64_t connections_dropped = 0;  ///< accept faults/conn limit
  std::uint64_t requests = 0;             ///< complete request lines
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t errors = 0;
  std::uint64_t reloads = 0;
  std::uint64_t reload_failures = 0;
  std::uint64_t breaker_opens = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t breakers_open = 0;
  std::uint64_t generation = 0;  ///< model-set generation
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t latency_count = 0;

  /// "k=v k=v …" line used by the stats response and final summary.
  std::string toLine() const;
};

class ServeMetrics {
 public:
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> connections_dropped{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> reload_failures{0};

  void recordLatencyMs(double ms) {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_.add(ms);
  }
  util::LatencyHistogram latencySnapshot() const {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    return latency_;
  }

  /// Counter + latency part of the snapshot; the server fills in the
  /// queue/breaker/generation gauges it owns.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex latency_mutex_;
  util::LatencyHistogram latency_;
};

}  // namespace tevot::serve

// Serving counters and latency percentiles behind /health and /stats.
//
// Counters are relaxed atomics (monotonic, per-event increments from
// many threads); the latency histogram is mutex-guarded because
// LatencyHistogram itself is not synchronized. snapshot() is the one
// read surface — the control responses, the drain-time summary, the
// bench JSON and the fleet router's cross-process aggregation all
// render from the same struct.
//
// toLine()/parseMetricsLine() are exact inverses for everything that
// matters downstream: counters and gauges round-trip as integers, and
// the latency distribution rides along as raw histogram buckets plus
// hexfloat min/max, so a router merging parsed worker lines computes
// the same percentiles as one process holding every sample.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/stats.hpp"

namespace tevot::serve {

struct MetricsSnapshot {
  std::uint64_t connections = 0;
  std::uint64_t connections_dropped = 0;  ///< accept faults/conn limit
  std::uint64_t requests = 0;             ///< complete request lines
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t errors = 0;
  std::uint64_t reloads = 0;
  std::uint64_t reload_failures = 0;
  std::uint64_t breaker_opens = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t breakers_open = 0;
  std::uint64_t generation = 0;  ///< model-set generation
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t latency_count = 0;
  /// Full latency distribution; the percentile fields above are
  /// derived from it. Serialized bucket-exactly by toLine().
  util::LatencyHistogram latency;

  /// "k=v k=v …" line used by the stats response and final summary.
  /// Includes lat_min/lat_max (hexfloat) and sparse lat_hist buckets
  /// so parseMetricsLine() reconstructs the histogram exactly.
  std::string toLine() const;

  /// Fleet aggregation: sums counters and gauges, merges the latency
  /// histogram bucket-exactly, recomputes the percentile fields, and
  /// keeps the *minimum* generation (the oldest model set still
  /// serving anywhere in the fleet).
  void mergeFrom(const MetricsSnapshot& other);

  /// Re-derives p50/p95/p99/max_ms/latency_count from `latency`.
  void refreshLatencyFields();
};

/// Parses a toLine() rendering (leading "stats " tolerated) back into
/// an exact snapshot: integers round-trip, the histogram is rebuilt
/// from lat_hist/lat_min/lat_max, and percentiles are recomputed from
/// it. False when the line is not a metrics line (missing requests=
/// or a malformed k=v token).
bool parseMetricsLine(std::string_view line, MetricsSnapshot* out);

class ServeMetrics {
 public:
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> connections_dropped{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> reload_failures{0};

  void recordLatencyMs(double ms) {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_.add(ms);
  }
  util::LatencyHistogram latencySnapshot() const {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    return latency_;
  }

  /// Counter + latency part of the snapshot; the server fills in the
  /// queue/breaker/generation gauges it owns.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex latency_mutex_;
  util::LatencyHistogram latency_;
};

}  // namespace tevot::serve

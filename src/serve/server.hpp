// Long-running, multi-threaded TEVoT prediction server.
//
// Thread model: one acceptor, one thread per live connection (bounded
// by max_connections), and a fixed worker pool. A connection thread
// reads request lines, admits predict work into the bounded queue
// (full queue => typed SHED, never a silent drop), and blocks for that
// request's response before reading the next line, so responses are
// trivially ordered and every request gets exactly one — a predictN
// batch occupies one queue slot and is answered with exactly n typed
// lines in tuple order (a shed/expired batch yields n SHED/DEADLINE
// lines; the metrics invariant requests == ok+shed+deadline+errors
// counts each tuple as a request). Workers pop
// tasks, enforce the end-to-end deadline (admission wait + compute),
// route through the per-FU circuit breaker, and predict against the
// immutable model snapshot captured at admission (reload atomicity).
//
// Robustness surface:
//  * load shedding   bounded queue + connection cap, SHED responses
//  * deadlines       per-request (or server default), checked at
//                    dequeue and after compute
//  * circuit breaker per model backend; OPEN => typed BREAKER_OPEN
//  * hot reload      ModelRegistry validate-then-swap (control
//                    `reload` request; tevot_serve also maps SIGHUP)
//  * graceful drain  drainAndStop(): stop accepting, complete or shed
//                    queued work within the drain deadline, join all
//  * fault injection serve.accept / serve.parse / serve.predict /
//                    serve.reload (failures) and serve.slow (delay)
//                    sites, armed via TEVOT_FAULTS or a
//                    local injector — degradation is deterministic and
//                    testable (check::checkServeResilience)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/breaker.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "util/fault_injection.hpp"
#include "util/fd.hpp"

namespace tevot::serve {

struct ServerOptions {
  std::string model_dir;
  /// Listen port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  int port = 0;
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t max_connections = 64;
  /// Applied when a request carries no deadline; 0 = none.
  double default_deadline_ms = 0.0;
  /// Gate loads/reloads through interval certification
  /// (verify::certifyModelForServing) on top of the point-canary
  /// validation; an uncertifiable model is refused and the previous
  /// set keeps serving.
  bool strict_verify = false;
  /// Budget for drainAndStop() to complete queued work before
  /// shedding the remainder.
  double drain_deadline_ms = 2000.0;
  BreakerConfig breaker;
  /// Fault injector for the serve.* points; nullptr uses
  /// util::FaultInjector::global() (armed via TEVOT_FAULTS).
  util::FaultInjector* faults = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads models, binds and starts all threads. Returns a typed
  /// error (and starts nothing) on load/bind failure.
  util::Status start();

  bool running() const { return running_.load(); }
  /// The bound port (after start()).
  int port() const { return bound_port_; }

  /// Hot reload from the model directory; on failure the previous
  /// models keep serving.
  util::Status reload();

  /// Counters plus live gauges (queue depth, breaker states,
  /// generation).
  MetricsSnapshot stats() const;

  /// Graceful drain: stop accepting, complete or shed queued work
  /// within drain_deadline_ms, join every thread. Idempotent.
  /// Returns the final stats snapshot.
  MetricsSnapshot drainAndStop();

 private:
  using Clock = std::chrono::steady_clock;

  struct Task {
    Request request;
    Clock::time_point arrival{};
    double deadline_ms = 0.0;
    std::uint64_t id = 0;
    std::shared_ptr<const ModelSet> models;
    /// One entry per response line: batch tuples for kPredictBatch,
    /// a single entry otherwise.
    std::promise<std::vector<Response>> promise;
  };

  struct Connection {
    util::UniqueFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void connectionLoop(Connection* connection);
  void workerLoop();
  void handleLine(Connection* connection, std::string_view line);
  Response handleControl(const Request& request);
  /// One Response per expected line (request.responseCount() of them);
  /// batch predicts run through TevotModel::predictDelayBatch, batch
  /// shed/deadline/error outcomes are replicated per tuple.
  std::vector<Response> processTask(Task& task);
  /// Serializes, appends '\n', writes, and bumps the per-status
  /// counter. A failed write (client gone) is not an error.
  void writeResponse(Connection* connection, const Response& response);
  /// writeResponse for every line of a batch, one send() so a batch
  /// answer is never interleaved with another write.
  void writeResponses(Connection* connection,
                      std::span<const Response> responses);
  void reapFinishedConnections();
  static double msSince(Clock::time_point start);

  ServerOptions options_;
  ModelRegistry registry_;
  ServeMetrics metrics_;
  util::FaultInjector* faults_ = nullptr;
  std::map<std::string, CircuitBreaker> breakers_;

  util::UniqueFd listen_fd_;
  int bound_port_ = 0;

  std::unique_ptr<BoundedQueue<Task>> queue_;
  std::vector<std::thread> workers_;
  std::thread acceptor_;

  std::mutex connections_mutex_;
  std::list<Connection> connections_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shed_all_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> next_connection_id_{1};
};

}  // namespace tevot::serve

#include "serve/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tevot::serve {
namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
      ++pos;
    }
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

/// Entire-token finite double; false on trailing junk, NaN and inf.
bool parseFiniteDouble(std::string_view token, double* out) {
  const std::string text(token);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// 32-bit operand, base 0 (0x hex accepted), entire token.
bool parseWord32(std::string_view token, std::uint32_t* out) {
  const std::string text(token);
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (value > 0xffffffffull) return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

const char* responseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "OK";
    case ResponseStatus::kShed: return "SHED";
    case ResponseStatus::kDeadline: return "DEADLINE";
    case ResponseStatus::kError: return "ERROR";
  }
  return "?";
}

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "NONE";
    case ErrorCode::kParse: return "PARSE";
    case ErrorCode::kBadRequest: return "BAD_REQUEST";
    case ErrorCode::kOversized: return "OVERSIZED";
    case ErrorCode::kUnknownFu: return "UNKNOWN_FU";
    case ErrorCode::kModelUnavailable: return "MODEL_UNAVAILABLE";
    case ErrorCode::kBreakerOpen: return "BREAKER_OPEN";
    case ErrorCode::kReloadFailed: return "RELOAD_FAILED";
    case ErrorCode::kFaultInjected: return "FAULT_INJECTED";
    case ErrorCode::kDraining: return "DRAINING";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "?";
}

std::string Response::serialize() const {
  switch (status) {
    case ResponseStatus::kOk: {
      if (!detail.empty()) return "OK " + detail;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "OK delay=%a err=%d", delay_ps,
                    timing_error ? 1 : 0);
      return buf;
    }
    case ResponseStatus::kShed:
      return "SHED " + detail;
    case ResponseStatus::kDeadline:
      return "DEADLINE " + detail;
    case ResponseStatus::kError:
      return std::string("ERROR ") + errorCodeName(code) + " " + detail;
  }
  return "ERROR INTERNAL unreachable";
}

Response Response::ok(double delay_ps, bool timing_error) {
  Response r;
  r.status = ResponseStatus::kOk;
  r.delay_ps = delay_ps;
  r.timing_error = timing_error;
  return r;
}

Response Response::payload(const std::string& text) {
  Response r;
  r.status = ResponseStatus::kOk;
  r.detail = text;
  return r;
}

Response Response::shed(std::string detail) {
  Response r;
  r.status = ResponseStatus::kShed;
  r.detail = std::move(detail);
  return r;
}

Response Response::deadline(std::string detail) {
  Response r;
  r.status = ResponseStatus::kDeadline;
  r.detail = std::move(detail);
  return r;
}

Response Response::error(ErrorCode code, std::string detail) {
  Response r;
  r.status = ResponseStatus::kError;
  r.code = code;
  r.detail = std::move(detail);
  return r;
}

util::Status parseRequest(std::string_view line, Request* out) {
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) {
    return util::Status::parseError("empty request");
  }
  const std::string_view verb = tokens[0];
  if (verb == "health" || verb == "stats" || verb == "reload") {
    if (tokens.size() != 1) {
      return util::Status::parseError(std::string(verb) +
                                      " takes no arguments");
    }
    out->kind = verb == "health"  ? RequestKind::kHealth
                : verb == "stats" ? RequestKind::kStats
                                  : RequestKind::kReload;
    return util::Status::okStatus();
  }
  const bool is_batch = verb == "predictN";
  if (verb != "predict" && !is_batch) {
    return util::Status::parseError("unknown verb '" + std::string(verb) +
                                    "'");
  }
  // Shared head: <fu> <V> <T> <tclk_ps>, then either the single
  // operand tuple or <n> and n tuples, then an optional deadline.
  if (tokens.size() < (is_batch ? 10u : 9u)) {
    return util::Status::parseError(std::string(verb) +
                                    " is missing arguments, got " +
                                    std::to_string(tokens.size() - 1));
  }
  out->kind = is_batch ? RequestKind::kPredictBatch : RequestKind::kPredict;
  out->fu = std::string(tokens[1]);
  out->batch.clear();
  struct Field {
    const char* name;
    std::string_view token;
    double* value;
  };
  const Field doubles[] = {
      {"V", tokens[2], &out->voltage},
      {"T", tokens[3], &out->temperature},
      {"tclk_ps", tokens[4], &out->tclk_ps},
  };
  for (const Field& field : doubles) {
    if (!parseFiniteDouble(field.token, field.value)) {
      return util::Status::invalidArgument(
          std::string(field.name) + " '" + std::string(field.token) +
          "' is not a finite number");
    }
  }
  std::size_t tuple_count = 1;
  std::size_t tuples_at = 5;  // first tuple token index
  if (is_batch) {
    std::uint32_t n = 0;
    if (!parseWord32(tokens[5], &n)) {
      return util::Status::invalidArgument(
          "n '" + std::string(tokens[5]) + "' is not a batch size");
    }
    if (n == 0) {
      return util::Status::invalidArgument(
          "predictN needs at least one operand tuple");
    }
    if (n > kMaxBatchTuples) {
      return util::Status::invalidArgument(
          "predictN batch of " + std::to_string(n) + " exceeds the cap of " +
          std::to_string(kMaxBatchTuples));
    }
    tuple_count = n;
    tuples_at = 6;
  }
  const std::size_t after_tuples = tuples_at + 4 * tuple_count;
  if (tokens.size() != after_tuples && tokens.size() != after_tuples + 1) {
    return util::Status::invalidArgument(
        std::string(verb) + " expects " + std::to_string(tuple_count) +
        " operand tuple(s) and an optional deadline, got " +
        std::to_string(tokens.size() - tuples_at) + " trailing tokens");
  }
  const char* const tuple_names[] = {"a", "b", "prev_a", "prev_b"};
  for (std::size_t tuple = 0; tuple < tuple_count; ++tuple) {
    BatchOperand operand;
    std::uint32_t* const slots[] = {&operand.a, &operand.b,
                                    &operand.prev_a, &operand.prev_b};
    for (std::size_t w = 0; w < 4; ++w) {
      const std::string_view token = tokens[tuples_at + 4 * tuple + w];
      if (!parseWord32(token, slots[w])) {
        return util::Status::invalidArgument(
            std::string(tuple_names[w]) + " '" + std::string(token) +
            "' in tuple " + std::to_string(tuple) +
            " is not a 32-bit operand");
      }
    }
    if (is_batch) {
      out->batch.push_back(operand);
    } else {
      out->a = operand.a;
      out->b = operand.b;
      out->prev_a = operand.prev_a;
      out->prev_b = operand.prev_b;
    }
  }
  out->deadline_ms = 0.0;
  if (tokens.size() == after_tuples + 1 &&
      (!parseFiniteDouble(tokens[after_tuples], &out->deadline_ms) ||
       out->deadline_ms < 0.0)) {
    return util::Status::invalidArgument(
        "deadline_ms '" + std::string(tokens[after_tuples]) +
        "' is not a finite non-negative number");
  }
  if (out->tclk_ps <= 0.0) {
    return util::Status::invalidArgument("tclk_ps must be > 0");
  }
  return util::Status::okStatus();
}

std::string formatBatchRequest(const std::string& fu, double voltage,
                               double temperature, double tclk_ps,
                               std::span<const BatchOperand> operands,
                               double deadline_ms) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "predictN %s %a %a %a %zu",
                fu.c_str(), voltage, temperature, tclk_ps,
                operands.size());
  std::string line = buf;
  for (const BatchOperand& operand : operands) {
    std::snprintf(buf, sizeof(buf), " %u %u %u %u", operand.a, operand.b,
                  operand.prev_a, operand.prev_b);
    line += buf;
  }
  if (deadline_ms > 0.0) {
    std::snprintf(buf, sizeof(buf), " %a", deadline_ms);
    line += buf;
  }
  return line;
}

Response responseForParseFailure(const util::Status& status) {
  const ErrorCode code = status.code == util::StatusCode::kInvalidArgument
                             ? ErrorCode::kBadRequest
                             : ErrorCode::kParse;
  return Response::error(code, status.message);
}

bool parseResponse(std::string_view line, Response* out) {
  if (line.empty() || line.size() > 2 * kMaxLineBytes) return false;
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) return false;
  const std::string_view head = tokens[0];
  const auto rest_after = [&](std::size_t n) {
    // Raw remainder after the n-th token (tokens view into `line`, so
    // pointer arithmetic gives the exact offset).
    std::size_t pos = static_cast<std::size_t>(tokens[n - 1].data() -
                                               line.data()) +
                      tokens[n - 1].size();
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    return std::string(line.substr(pos));
  };
  if (head == "OK") {
    out->status = ResponseStatus::kOk;
    out->code = ErrorCode::kNone;
    if (tokens.size() == 3 && tokens[1].substr(0, 6) == "delay=" &&
        tokens[2].substr(0, 4) == "err=") {
      double delay = 0.0;
      if (!parseFiniteDouble(tokens[1].substr(6), &delay)) return false;
      const std::string_view err = tokens[2].substr(4);
      if (err != "0" && err != "1") return false;
      out->delay_ps = delay;
      out->timing_error = err == "1";
      out->detail.clear();
      return true;
    }
    // Control-surface payloads: OK health …, OK stats …, OK reload …
    if (tokens.size() >= 2 &&
        (tokens[1] == "health" || tokens[1] == "stats" ||
         tokens[1] == "reload")) {
      out->detail = rest_after(1);
      return true;
    }
    return false;
  }
  if (head == "SHED" || head == "DEADLINE") {
    if (tokens.size() < 2) return false;
    out->status =
        head == "SHED" ? ResponseStatus::kShed : ResponseStatus::kDeadline;
    out->code = ErrorCode::kNone;
    out->detail = rest_after(1);
    return true;
  }
  if (head == "ERROR") {
    if (tokens.size() < 3) return false;
    out->status = ResponseStatus::kError;
    const std::string_view code = tokens[1];
    bool known = false;
    for (const ErrorCode candidate :
         {ErrorCode::kParse, ErrorCode::kBadRequest, ErrorCode::kOversized,
          ErrorCode::kUnknownFu, ErrorCode::kModelUnavailable,
          ErrorCode::kBreakerOpen, ErrorCode::kReloadFailed,
          ErrorCode::kFaultInjected, ErrorCode::kDraining,
          ErrorCode::kInternal}) {
      if (code == errorCodeName(candidate)) {
        out->code = candidate;
        known = true;
        break;
      }
    }
    if (!known) return false;
    out->detail = rest_after(2);
    return true;
  }
  return false;
}

}  // namespace tevot::serve

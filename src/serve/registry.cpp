#include "serve/registry.hpp"

#include <filesystem>
#include <utility>

#include "circuits/fu.hpp"
#include "util/log.hpp"
#include "verify/model_rules.hpp"

namespace tevot::serve {

ModelRegistry::ModelRegistry(std::string model_dir, bool strict_verify)
    : model_dir_(std::move(model_dir)), strict_verify_(strict_verify) {}

util::Status ModelRegistry::reload(util::FaultInjector* faults) {
  const std::lock_guard<std::mutex> lock(reload_mutex_);
  auto candidate = std::make_shared<ModelSet>();
  candidate->generation = next_generation_;
  try {
    if (faults != nullptr) {
      faults->maybeThrow("serve.reload",
                         std::to_string(candidate->generation));
    }
    for (const circuits::FuKind kind : circuits::kAllFus) {
      const std::string name(circuits::fuSlug(kind));
      const std::string path = model_dir_ + "/" + name + ".model";
      if (!std::filesystem::exists(path)) continue;
      core::TevotModel model = core::TevotModel::load(path);
      const util::Status valid = model.validateForServing();
      if (!valid.ok()) {
        return util::Status::invalidArgument("model " + path +
                                             " failed validation: " +
                                             valid.message);
      }
      if (strict_verify_) {
        const util::Status certified =
            verify::certifyModelForServing(model);
        if (!certified.ok()) {
          return util::Status::invalidArgument(
              "model " + path + " failed strict verification: " +
              certified.message);
        }
      }
      candidate->models.emplace(name, std::move(model));
    }
  } catch (const util::StatusError& error) {
    return error.status();
  } catch (const std::exception& error) {
    return util::Status::internal("reload " + model_dir_ + ": " +
                                  error.what());
  }
  if (candidate->models.empty()) {
    return util::Status::invalidArgument("no <fu>.model files in " +
                                         model_dir_);
  }
  // The swap: one pointer store under the snapshot mutex. In-flight
  // requests keep their snapshot alive via shared_ptr refcounts; new
  // admissions see the new generation immediately.
  {
    const std::lock_guard<std::mutex> lock(current_mutex_);
    current_ = std::move(candidate);
  }
  ++next_generation_;
  util::logInfo() << "serve: loaded model generation "
                  << (next_generation_ - 1) << " from " << model_dir_;
  return util::Status::okStatus();
}

}  // namespace tevot::serve

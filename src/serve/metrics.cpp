#include "serve/metrics.hpp"

#include <cstdio>

namespace tevot::serve {

std::string MetricsSnapshot::toLine() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu ok=%llu shed=%llu deadline=%llu errors=%llu "
      "connections=%llu dropped=%llu queue=%zu/%zu breakers_open=%zu "
      "breaker_opens=%llu reloads=%llu reload_failures=%llu "
      "generation=%llu p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f max_ms=%.3f "
      "latency_count=%llu",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(connections_dropped), queue_depth,
      queue_capacity, breakers_open,
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(reloads),
      static_cast<unsigned long long>(reload_failures),
      static_cast<unsigned long long>(generation), p50_ms, p95_ms, p99_ms,
      max_ms, static_cast<unsigned long long>(latency_count));
  return buf;
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.connections = connections.load(std::memory_order_relaxed);
  snap.connections_dropped =
      connections_dropped.load(std::memory_order_relaxed);
  snap.requests = requests.load(std::memory_order_relaxed);
  snap.ok = ok.load(std::memory_order_relaxed);
  snap.shed = shed.load(std::memory_order_relaxed);
  snap.deadline = deadline.load(std::memory_order_relaxed);
  snap.errors = errors.load(std::memory_order_relaxed);
  snap.reloads = reloads.load(std::memory_order_relaxed);
  snap.reload_failures = reload_failures.load(std::memory_order_relaxed);
  const util::LatencyHistogram latency = latencySnapshot();
  snap.p50_ms = latency.p50();
  snap.p95_ms = latency.p95();
  snap.p99_ms = latency.p99();
  snap.max_ms = latency.maxMs();
  snap.latency_count = latency.count();
  return snap;
}

}  // namespace tevot::serve

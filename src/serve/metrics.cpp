#include "serve/metrics.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace tevot::serve {

std::string MetricsSnapshot::toLine() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu ok=%llu shed=%llu deadline=%llu errors=%llu "
      "connections=%llu dropped=%llu queue=%zu/%zu breakers_open=%zu "
      "breaker_opens=%llu reloads=%llu reload_failures=%llu "
      "generation=%llu p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f max_ms=%.3f "
      "latency_count=%llu",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(connections_dropped), queue_depth,
      queue_capacity, breakers_open,
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(reloads),
      static_cast<unsigned long long>(reload_failures),
      static_cast<unsigned long long>(generation), p50_ms, p95_ms, p99_ms,
      max_ms, static_cast<unsigned long long>(latency_count));
  std::string line = buf;
  // Exact-distribution tail: hexfloat min/max plus the non-empty
  // buckets, so a parse on the far side of a pipe or socket rebuilds
  // the histogram bit-for-bit. "-" marks an empty histogram.
  std::snprintf(buf, sizeof(buf), " lat_min=%a lat_max=%a lat_hist=",
                latency.minMs(), latency.maxMs());
  line += buf;
  bool any = false;
  for (std::size_t b = 0; b < util::LatencyHistogram::kBuckets; ++b) {
    const std::size_t count = latency.bucketCount(b);
    if (count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%zu:%zu", any ? "," : "", b, count);
    line += buf;
    any = true;
  }
  if (!any) line += "-";
  return line;
}

void MetricsSnapshot::mergeFrom(const MetricsSnapshot& other) {
  connections += other.connections;
  connections_dropped += other.connections_dropped;
  requests += other.requests;
  ok += other.ok;
  shed += other.shed;
  deadline += other.deadline;
  errors += other.errors;
  reloads += other.reloads;
  reload_failures += other.reload_failures;
  breaker_opens += other.breaker_opens;
  queue_depth += other.queue_depth;
  queue_capacity += other.queue_capacity;
  breakers_open += other.breakers_open;
  generation = generation == 0
                   ? other.generation
                   : (other.generation == 0
                          ? generation
                          : std::min(generation, other.generation));
  latency.merge(other.latency);
  refreshLatencyFields();
}

void MetricsSnapshot::refreshLatencyFields() {
  p50_ms = latency.p50();
  p95_ms = latency.p95();
  p99_ms = latency.p99();
  max_ms = latency.maxMs();
  latency_count = latency.count();
}

namespace {

bool parseU64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool parseDouble(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text) return false;
  *out = value;
  return true;
}

}  // namespace

bool parseMetricsLine(std::string_view line, MetricsSnapshot* out) {
  MetricsSnapshot snap;
  bool saw_requests = false;
  double lat_min = 0.0;
  double lat_max = 0.0;
  std::vector<std::pair<std::size_t, std::size_t>> buckets;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    const std::string_view token = line.substr(start, pos - start);
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      // A leading tag ("stats", "tevot_serve:", …) is tolerated, but
      // only before any k=v token — junk between pairs is malformed.
      if (saw_requests || !buckets.empty()) return false;
      continue;
    }
    const std::string key(token.substr(0, eq));
    const std::string value(token.substr(eq + 1));
    std::uint64_t u64 = 0;
    if (key == "requests") {
      if (!parseU64(value.c_str(), &snap.requests)) return false;
      saw_requests = true;
    } else if (key == "ok") {
      if (!parseU64(value.c_str(), &snap.ok)) return false;
    } else if (key == "shed") {
      if (!parseU64(value.c_str(), &snap.shed)) return false;
    } else if (key == "deadline") {
      if (!parseU64(value.c_str(), &snap.deadline)) return false;
    } else if (key == "errors") {
      if (!parseU64(value.c_str(), &snap.errors)) return false;
    } else if (key == "connections") {
      if (!parseU64(value.c_str(), &snap.connections)) return false;
    } else if (key == "dropped") {
      if (!parseU64(value.c_str(), &snap.connections_dropped)) return false;
    } else if (key == "queue") {
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos) return false;
      std::uint64_t depth = 0;
      std::uint64_t capacity = 0;
      if (!parseU64(value.substr(0, slash).c_str(), &depth) ||
          !parseU64(value.substr(slash + 1).c_str(), &capacity)) {
        return false;
      }
      snap.queue_depth = static_cast<std::size_t>(depth);
      snap.queue_capacity = static_cast<std::size_t>(capacity);
    } else if (key == "breakers_open") {
      if (!parseU64(value.c_str(), &u64)) return false;
      snap.breakers_open = static_cast<std::size_t>(u64);
    } else if (key == "breaker_opens") {
      if (!parseU64(value.c_str(), &snap.breaker_opens)) return false;
    } else if (key == "reloads") {
      if (!parseU64(value.c_str(), &snap.reloads)) return false;
    } else if (key == "reload_failures") {
      if (!parseU64(value.c_str(), &snap.reload_failures)) return false;
    } else if (key == "generation") {
      if (!parseU64(value.c_str(), &snap.generation)) return false;
    } else if (key == "p50_ms") {
      if (!parseDouble(value.c_str(), &snap.p50_ms)) return false;
    } else if (key == "p95_ms") {
      if (!parseDouble(value.c_str(), &snap.p95_ms)) return false;
    } else if (key == "p99_ms") {
      if (!parseDouble(value.c_str(), &snap.p99_ms)) return false;
    } else if (key == "max_ms") {
      if (!parseDouble(value.c_str(), &snap.max_ms)) return false;
    } else if (key == "latency_count") {
      if (!parseU64(value.c_str(), &snap.latency_count)) return false;
    } else if (key == "lat_min") {
      if (!parseDouble(value.c_str(), &lat_min)) return false;
    } else if (key == "lat_max") {
      if (!parseDouble(value.c_str(), &lat_max)) return false;
    } else if (key == "lat_hist") {
      if (value == "-") continue;
      std::size_t offset = 0;
      while (offset < value.size()) {
        std::size_t comma = value.find(',', offset);
        if (comma == std::string::npos) comma = value.size();
        const std::string entry = value.substr(offset, comma - offset);
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) return false;
        std::uint64_t bucket = 0;
        std::uint64_t count = 0;
        if (!parseU64(entry.substr(0, colon).c_str(), &bucket) ||
            !parseU64(entry.substr(colon + 1).c_str(), &count)) {
          return false;
        }
        buckets.emplace_back(static_cast<std::size_t>(bucket),
                             static_cast<std::size_t>(count));
        offset = comma + 1;
      }
    }
    // Unknown keys are skipped (forward compatibility).
  }
  if (!saw_requests) return false;
  if (!buckets.empty()) {
    snap.latency =
        util::LatencyHistogram::fromBuckets(buckets, lat_min, lat_max);
    snap.refreshLatencyFields();
  }
  *out = snap;
  return true;
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.connections = connections.load(std::memory_order_relaxed);
  snap.connections_dropped =
      connections_dropped.load(std::memory_order_relaxed);
  snap.requests = requests.load(std::memory_order_relaxed);
  snap.ok = ok.load(std::memory_order_relaxed);
  snap.shed = shed.load(std::memory_order_relaxed);
  snap.deadline = deadline.load(std::memory_order_relaxed);
  snap.errors = errors.load(std::memory_order_relaxed);
  snap.reloads = reloads.load(std::memory_order_relaxed);
  snap.reload_failures = reload_failures.load(std::memory_order_relaxed);
  snap.latency = latencySnapshot();
  snap.refreshLatencyFields();
  return snap;
}

}  // namespace tevot::serve

// Minimal blocking line client for the tevot_serve protocol; used by
// the resilience oracle, the serve tests and `tevot_cli serve-check`.
#pragma once

#include <optional>
#include <string>

#include "util/fd.hpp"
#include "util/status.hpp"

namespace tevot::serve {

class LineClient {
 public:
  LineClient() = default;

  /// Connects to 127.0.0.1:port. A refused connection is an IoError
  /// (callers retry while a freshly spawned server binds).
  util::Status connectTo(int port);

  bool connected() const { return fd_.valid(); }

  /// Sends `line` plus a trailing newline. False once the peer is gone.
  bool sendLine(const std::string& line);

  /// Blocks for the next full response line (newline stripped).
  /// nullopt on EOF / connection reset.
  std::optional<std::string> readLine();

  /// Half-close: no more requests, responses still readable.
  void closeSend();
  void close();

 private:
  util::UniqueFd fd_;
  std::string buffer_;
};

}  // namespace tevot::serve

// Minimal blocking line client for the tevot_serve protocol; used by
// the resilience oracle, the serve tests and `tevot_cli serve-check`.
#pragma once

#include <optional>
#include <string>

#include "util/fd.hpp"
#include "util/status.hpp"

namespace tevot::serve {

/// Bounded-backoff schedule for LineClient::reconnect(). The waits
/// are deterministic (no jitter) so a controller retrying through a
/// fault storm stays exactly reproducible: attempt k sleeps
/// min(initial_backoff_ms * growth^k, max_backoff_ms) before dialing.
struct ReconnectPolicy {
  int max_attempts = 5;
  double initial_backoff_ms = 1.0;
  double growth = 2.0;
  double max_backoff_ms = 100.0;
};

class LineClient {
 public:
  /// Hard cap on one response line. A server response is at most a
  /// stats line (~2 KiB); a peer streaming an unbounded "line" is a
  /// protocol violation, and readLine fails instead of buffering it.
  static constexpr std::size_t kMaxResponseLineBytes = 1 << 20;

  LineClient() = default;

  /// Connects to 127.0.0.1:port. A refused connection is an IoError
  /// (callers retry while a freshly spawned server binds).
  /// recv_timeout_ms > 0 arms SO_RCVTIMEO so readLine() fails instead
  /// of blocking forever on a wedged peer (the fleet router bounds
  /// backend stalls with this).
  util::Status connectTo(int port, double recv_timeout_ms = 0.0);

  /// Re-dials the port of the last connectTo() (with its recv
  /// timeout), retrying up to policy.max_attempts times with bounded
  /// exponential backoff between attempts. Before this helper every
  /// caller hand-rolled its own reconnect loop around a dropped
  /// connection. Closes any half-dead socket first; on success the
  /// read buffer is empty (mid-stream partial lines are discarded —
  /// the newline protocol cannot resume a torn response, callers
  /// resend the request). Fails with the last attempt's IoError plus
  /// the attempt count; kInvalidArgument when connectTo() never
  /// succeeded (no port to redial).
  util::Status reconnect(const ReconnectPolicy& policy = {});

  bool connected() const { return fd_.valid(); }

  /// Sends `line` plus a trailing newline. False once the peer is gone.
  bool sendLine(const std::string& line);

  /// Blocks for the next full response line (newline stripped).
  /// nullopt on EOF / connection reset, and on a response line over
  /// kMaxResponseLineBytes — the connection is closed in that case
  /// (mid-line state is unrecoverable), so connected() turns false.
  std::optional<std::string> readLine();

  /// Half-close: no more requests, responses still readable.
  void closeSend();
  void close();

 private:
  util::UniqueFd fd_;
  std::string buffer_;
  int last_port_ = 0;  ///< 0 until the first connectTo()
  double last_recv_timeout_ms_ = 0.0;
};

}  // namespace tevot::serve

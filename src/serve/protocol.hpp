// Wire protocol of tevot_serve: newline-delimited text, one request
// per line, exactly one response line per request.
//
// Request grammar (tokens separated by spaces/tabs; lines over
// kMaxLineBytes are rejected with ERROR OVERSIZED; blank lines are
// ignored):
//   predict <fu> <V> <T> <tclk_ps> <a> <b> <prev_a> <prev_b> [deadline_ms]
//   predictN <fu> <V> <T> <tclk_ps> <n> {<a> <b> <prev_a> <prev_b>}*n
//            [deadline_ms]
//   health
//   stats
//   reload
// Operands accept 0x-prefixed hex; V/T/tclk/deadline are decimal or
// hexfloat doubles and must be finite (NaN/inf are BAD_REQUEST, never
// a crash or a silent wrong answer); tclk must be > 0 and deadline
// >= 0 (0 = server default).
//
// predictN is the batch form: n operand tuples sharing one corner,
// clock, and deadline, answered with exactly n typed response lines
// in tuple order (each drawn from the same taxonomy as a single
// predict — a shed or expired batch yields n SHED/DEADLINE lines,
// never silence). n must be in [1, kMaxBatchTuples]; n = 0, oversized
// n, and a malformed tuple anywhere in the batch are one BAD_REQUEST
// for the whole line (parse failures are per-line, tuple responses
// are per-tuple). Batches amortize per-request parse/dispatch cost
// and are served by the flat batched engine
// (TevotModel::predictDelayBatch), which is bit-identical to the
// scalar path.
//
// Response grammar (always a single line; the first token is the
// response status, the full taxonomy a client must handle):
//   OK delay=<hexfloat ps> err=<0|1>      predict accepted
//   OK health <k=v ...>                   control surface
//   OK stats <k=v ...>
//   OK reload generation=<n> models=<n>
//   SHED <detail>                         load shed (queue full / drain)
//   DEADLINE <detail>                     per-request deadline exceeded
//   ERROR <CODE> <detail>                 typed failure, see ErrorCode
//
// delay is printed with printf %a (hexfloat), so a client parsing it
// with strtod recovers the server's double bit-for-bit — the property
// check::checkServeResilience pins against offline evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace tevot::serve {

/// Hard cap on one request line (bytes, newline excluded). Longer
/// lines get one ERROR OVERSIZED response and are discarded.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// Cap on predictN tuples per line. (The line-byte cap applies on top
/// of this: a batch that still fits kMaxBatchTuples but overflows
/// kMaxLineBytes is OVERSIZED.)
inline constexpr std::size_t kMaxBatchTuples = 256;

enum class RequestKind { kPredict, kPredictBatch, kHealth, kStats,
                         kReload };

/// One operand tuple of a predictN batch.
struct BatchOperand {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t prev_a = 0;
  std::uint32_t prev_b = 0;
};

struct Request {
  RequestKind kind = RequestKind::kPredict;
  std::string fu;            ///< functional-unit name (predict forms)
  double voltage = 0.0;      ///< [V]
  double temperature = 0.0;  ///< [deg C]
  double tclk_ps = 0.0;      ///< clock period to classify against
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t prev_a = 0;
  std::uint32_t prev_b = 0;
  double deadline_ms = 0.0;  ///< 0 = server default
  /// predictN tuples (kPredictBatch only), size in [1,kMaxBatchTuples].
  std::vector<BatchOperand> batch;

  /// Tuples this request is answered with: batch size for
  /// kPredictBatch, 1 otherwise.
  std::size_t responseCount() const {
    return kind == RequestKind::kPredictBatch ? batch.size() : 1;
  }
};

enum class ResponseStatus { kOk, kShed, kDeadline, kError };

/// Typed failure taxonomy carried in ERROR responses.
enum class ErrorCode {
  kNone = 0,
  kParse,             ///< unrecognized verb / wrong arity
  kBadRequest,        ///< recognized shape, invalid operand (NaN, tclk<=0)
  kOversized,         ///< request line over kMaxLineBytes
  kUnknownFu,         ///< fu name outside the known set
  kModelUnavailable,  ///< known fu, but no model loaded for it
  kBreakerOpen,       ///< backend circuit breaker rejecting requests
  kReloadFailed,      ///< validation failed; previous models kept
  kFaultInjected,     ///< deterministic serve.* injected fault
  kDraining,          ///< server shutting down
  kInternal,          ///< unclassified backend exception
};

const char* responseStatusName(ResponseStatus status);  ///< "OK", "SHED"…
const char* errorCodeName(ErrorCode code);              ///< "PARSE", …

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  ErrorCode code = ErrorCode::kNone;
  double delay_ps = 0.0;
  bool timing_error = false;
  /// Human detail for SHED/DEADLINE/ERROR, payload for health/stats.
  std::string detail;

  /// One response line, no trailing newline.
  std::string serialize() const;

  static Response ok(double delay_ps, bool timing_error);
  static Response payload(const std::string& text);  ///< OK + detail
  static Response shed(std::string detail);
  static Response deadline(std::string detail);
  static Response error(ErrorCode code, std::string detail);
};

/// Parses one request line (newline/CR already stripped). On failure
/// returns the ERROR response to send (kParse/kBadRequest), leaving
/// `out` unspecified. Blank lines must be filtered by the caller.
util::Status parseRequest(std::string_view line, Request* out);

/// Formats a predictN request line (no trailing newline). V/T/tclk
/// are printed as hexfloats so the server parses back the caller's
/// doubles bit for bit. deadline_ms <= 0 omits the trailing deadline.
std::string formatBatchRequest(const std::string& fu, double voltage,
                               double temperature, double tclk_ps,
                               std::span<const BatchOperand> operands,
                               double deadline_ms = 0.0);

/// Maps a parse failure Status onto the typed wire error.
Response responseForParseFailure(const util::Status& status);

/// Client-side: splits a response line into its typed form. False when
/// the line is not well-formed (the resilience oracle treats that as a
/// violation).
bool parseResponse(std::string_view line, Response* out);

}  // namespace tevot::serve

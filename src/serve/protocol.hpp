// Wire protocol of tevot_serve: newline-delimited text, one request
// per line, exactly one response line per request.
//
// Request grammar (tokens separated by spaces/tabs; lines over
// kMaxLineBytes are rejected with ERROR OVERSIZED; blank lines are
// ignored):
//   predict <fu> <V> <T> <tclk_ps> <a> <b> <prev_a> <prev_b> [deadline_ms]
//   health
//   stats
//   reload
// Operands accept 0x-prefixed hex; V/T/tclk/deadline are decimal or
// hexfloat doubles and must be finite (NaN/inf are BAD_REQUEST, never
// a crash or a silent wrong answer); tclk must be > 0 and deadline
// >= 0 (0 = server default).
//
// Response grammar (always a single line; the first token is the
// response status, the full taxonomy a client must handle):
//   OK delay=<hexfloat ps> err=<0|1>      predict accepted
//   OK health <k=v ...>                   control surface
//   OK stats <k=v ...>
//   OK reload generation=<n> models=<n>
//   SHED <detail>                         load shed (queue full / drain)
//   DEADLINE <detail>                     per-request deadline exceeded
//   ERROR <CODE> <detail>                 typed failure, see ErrorCode
//
// delay is printed with printf %a (hexfloat), so a client parsing it
// with strtod recovers the server's double bit-for-bit — the property
// check::checkServeResilience pins against offline evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace tevot::serve {

/// Hard cap on one request line (bytes, newline excluded). Longer
/// lines get one ERROR OVERSIZED response and are discarded.
inline constexpr std::size_t kMaxLineBytes = 4096;

enum class RequestKind { kPredict, kHealth, kStats, kReload };

struct Request {
  RequestKind kind = RequestKind::kPredict;
  std::string fu;            ///< functional-unit name (predict only)
  double voltage = 0.0;      ///< [V]
  double temperature = 0.0;  ///< [deg C]
  double tclk_ps = 0.0;      ///< clock period to classify against
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t prev_a = 0;
  std::uint32_t prev_b = 0;
  double deadline_ms = 0.0;  ///< 0 = server default
};

enum class ResponseStatus { kOk, kShed, kDeadline, kError };

/// Typed failure taxonomy carried in ERROR responses.
enum class ErrorCode {
  kNone = 0,
  kParse,             ///< unrecognized verb / wrong arity
  kBadRequest,        ///< recognized shape, invalid operand (NaN, tclk<=0)
  kOversized,         ///< request line over kMaxLineBytes
  kUnknownFu,         ///< fu name outside the known set
  kModelUnavailable,  ///< known fu, but no model loaded for it
  kBreakerOpen,       ///< backend circuit breaker rejecting requests
  kReloadFailed,      ///< validation failed; previous models kept
  kFaultInjected,     ///< deterministic serve.* injected fault
  kDraining,          ///< server shutting down
  kInternal,          ///< unclassified backend exception
};

const char* responseStatusName(ResponseStatus status);  ///< "OK", "SHED"…
const char* errorCodeName(ErrorCode code);              ///< "PARSE", …

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  ErrorCode code = ErrorCode::kNone;
  double delay_ps = 0.0;
  bool timing_error = false;
  /// Human detail for SHED/DEADLINE/ERROR, payload for health/stats.
  std::string detail;

  /// One response line, no trailing newline.
  std::string serialize() const;

  static Response ok(double delay_ps, bool timing_error);
  static Response payload(const std::string& text);  ///< OK + detail
  static Response shed(std::string detail);
  static Response deadline(std::string detail);
  static Response error(ErrorCode code, std::string detail);
};

/// Parses one request line (newline/CR already stripped). On failure
/// returns the ERROR response to send (kParse/kBadRequest), leaving
/// `out` unspecified. Blank lines must be filtered by the caller.
util::Status parseRequest(std::string_view line, Request* out);

/// Maps a parse failure Status onto the typed wire error.
Response responseForParseFailure(const util::Status& status);

/// Client-side: splits a response line into its typed form. False when
/// the line is not well-formed (the resilience oracle treats that as a
/// violation).
bool parseResponse(std::string_view line, Response* out);

}  // namespace tevot::serve

#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "circuits/fu.hpp"
#include "liberty/corner.hpp"
#include "util/log.hpp"

namespace tevot::serve {

namespace {

/// Writes the whole buffer, retrying on EINTR / short writes.
/// MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE.
bool sendAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.model_dir, options_.strict_verify) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  faults_ = options_.faults != nullptr ? options_.faults
                                       : &util::FaultInjector::global();
  for (const circuits::FuKind kind : circuits::kAllFus) {
    breakers_.emplace(std::piecewise_construct,
                      std::forward_as_tuple(circuits::fuSlug(kind)),
                      std::forward_as_tuple(options_.breaker));
  }
}

Server::~Server() {
  if (running_.load()) drainAndStop();
}

double Server::msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

util::Status Server::start() {
  if (running_.load()) {
    return util::Status::invalidArgument("server already running");
  }
  const util::Status loaded = registry_.reload(nullptr);
  if (!loaded.ok()) return loaded;

  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Status::ioError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::ioError("bind 127.0.0.1:" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
  }
  if (::listen(fd.get(), 128) != 0) {
    return util::Status::ioError(std::string("listen: ") +
                                 std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return util::Status::ioError(std::string("getsockname: ") +
                                 std::strerror(errno));
  }
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = std::move(fd);

  queue_ = std::make_unique<BoundedQueue<Task>>(options_.queue_capacity);
  draining_.store(false);
  shed_all_.store(false);
  running_.store(true);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  acceptor_ = std::thread([this] { acceptLoop(); });
  util::logInfo() << "serve: listening on 127.0.0.1:" << bound_port_
                  << " workers=" << options_.workers
                  << " queue=" << options_.queue_capacity;
  return util::Status::okStatus();
}

util::Status Server::reload() {
  const util::Status status = registry_.reload(faults_);
  if (status.ok()) {
    metrics_.reloads.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.reload_failures.fetch_add(1, std::memory_order_relaxed);
    util::logWarn() << "serve: reload failed (previous models kept): "
                    << status.message;
  }
  return status;
}

MetricsSnapshot Server::stats() const {
  MetricsSnapshot snap = metrics_.snapshot();
  snap.queue_depth = queue_ != nullptr ? queue_->size() : 0;
  snap.queue_capacity = options_.queue_capacity;
  snap.generation = registry_.generation();
  for (const auto& [name, breaker] : breakers_) {
    if (breaker.state() != CircuitBreaker::State::kClosed) {
      ++snap.breakers_open;
    }
    snap.breaker_opens += breaker.opens();
  }
  return snap;
}

void Server::acceptLoop() {
  while (!draining_.load()) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::logWarn() << "serve: poll: " << std::strerror(errno);
      break;
    }
    reapFinishedConnections();
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    util::UniqueFd conn(::accept4(listen_fd_.get(), nullptr, nullptr,
                                  SOCK_CLOEXEC));
    if (!conn.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down under us (drain) or fatal
    }
    const std::uint64_t conn_id =
        next_connection_id_.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections.fetch_add(1, std::memory_order_relaxed);
    if (faults_->shouldFail("serve.accept", std::to_string(conn_id))) {
      // Injected accept fault: the connection is dropped before any
      // request is read. Clients observe a clean EOF, never a hang.
      metrics_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::size_t live = 0;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      live = connections_.size();
    }
    if (live >= options_.max_connections) {
      const Response shed = Response::shed("connection limit");
      const std::string line = shed.serialize() + "\n";
      sendAll(conn.get(), line.data(), line.size());
      metrics_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back();
    Connection* entry = &connections_.back();
    entry->fd = std::move(conn);
    entry->thread = std::thread([this, entry] { connectionLoop(entry); });
  }
}

void Server::reapFinishedConnections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::connectionLoop(Connection* connection) {
  std::string buffer;
  bool discarding = false;  // inside an oversized line, until '\n'
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(connection->fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or drain's shutdown(SHUT_RD)
    buffer.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl == std::string::npos) {
        if (discarding) {
          buffer.clear();
        } else if (buffer.size() > kMaxLineBytes) {
          // The line already exceeds the cap without a terminator:
          // answer once, then swallow until the newline arrives.
          metrics_.requests.fetch_add(1, std::memory_order_relaxed);
          writeResponse(connection,
                        Response::error(ErrorCode::kOversized,
                                        "request line exceeds " +
                                            std::to_string(kMaxLineBytes) +
                                            " bytes"));
          discarding = true;
          buffer.clear();
        }
        break;
      }
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (discarding) {
        discarding = false;  // tail of the oversized line; already answered
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > kMaxLineBytes) {
        metrics_.requests.fetch_add(1, std::memory_order_relaxed);
        writeResponse(connection,
                      Response::error(ErrorCode::kOversized,
                                      "request line exceeds " +
                                          std::to_string(kMaxLineBytes) +
                                          " bytes"));
        continue;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      handleLine(connection, line);
    }
  }
  connection->done.store(true);
}

void Server::handleLine(Connection* connection, std::string_view line) {
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (faults_->shouldFail("serve.parse", std::to_string(id))) {
    writeResponse(connection,
                  Response::error(ErrorCode::kFaultInjected,
                                  "injected fault at serve.parse"));
    return;
  }
  Request request;
  const util::Status parsed = parseRequest(line, &request);
  if (!parsed.ok()) {
    // Parse failures are per-line: one BAD_REQUEST/PARSE even for a
    // malformed predictN (there is no trustworthy tuple count yet).
    writeResponse(connection, responseForParseFailure(parsed));
    return;
  }
  // From here the line is a well-formed request answered with
  // responseCount() lines; count each tuple toward the
  // requests == ok+shed+deadline+errors invariant.
  const std::size_t lines = request.responseCount();
  if (lines > 1) {
    metrics_.requests.fetch_add(lines - 1, std::memory_order_relaxed);
  }
  if (request.kind != RequestKind::kPredict &&
      request.kind != RequestKind::kPredictBatch) {
    writeResponse(connection, handleControl(request));
    return;
  }
  if (draining_.load()) {
    const std::vector<Response> shed(lines, Response::shed("draining"));
    writeResponses(connection, shed);
    return;
  }
  Task task;
  task.request = std::move(request);
  task.arrival = Clock::now();
  task.deadline_ms = task.request.deadline_ms > 0.0
                         ? task.request.deadline_ms
                         : options_.default_deadline_ms;
  task.id = id;
  // Admission-time model snapshot: this request is served entirely
  // from one generation even if a reload lands while it is queued.
  task.models = registry_.snapshot();
  std::future<std::vector<Response>> future = task.promise.get_future();
  if (!queue_->tryPush(std::move(task))) {
    const std::vector<Response> shed(lines, Response::shed("queue full"));
    writeResponses(connection, shed);
    return;
  }
  writeResponses(connection, future.get());
}

Response Server::handleControl(const Request& request) {
  switch (request.kind) {
    case RequestKind::kHealth: {
      const MetricsSnapshot snap = stats();
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "health status=%s generation=%llu models=%zu "
                    "queue=%zu/%zu breakers_open=%zu",
                    draining_.load() ? "draining" : "serving",
                    static_cast<unsigned long long>(snap.generation),
                    registry_.snapshot()->models.size(), snap.queue_depth,
                    snap.queue_capacity, snap.breakers_open);
      return Response::payload(buf);
    }
    case RequestKind::kStats:
      return Response::payload("stats " + stats().toLine());
    case RequestKind::kReload: {
      const util::Status status = reload();
      if (!status.ok()) {
        return Response::error(ErrorCode::kReloadFailed, status.message);
      }
      const std::shared_ptr<const ModelSet> set = registry_.snapshot();
      return Response::payload(
          "reload generation=" + std::to_string(set->generation) +
          " models=" + std::to_string(set->models.size()));
    }
    case RequestKind::kPredict:
    case RequestKind::kPredictBatch:
      break;
  }
  return Response::error(ErrorCode::kInternal, "bad control dispatch");
}

void Server::workerLoop() {
  while (std::optional<Task> task = queue_->pop()) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::vector<Response> responses = processTask(*task);
    task->promise.set_value(std::move(responses));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<Response> Server::processTask(Task& task) {
  // A batch fails or succeeds as a unit up to the predict call: shed,
  // deadline, breaker, and fault outcomes are replicated per tuple so
  // the client still receives exactly n lines. Fault points and the
  // breaker fire once per batch (keyed by task id), not per tuple.
  const std::size_t lines = task.request.responseCount();
  const auto replicate = [lines](Response response) {
    return std::vector<Response>(lines, std::move(response));
  };
  if (shed_all_.load()) return replicate(Response::shed("draining"));
  const double waited_ms = msSince(task.arrival);
  if (task.deadline_ms > 0.0 && waited_ms > task.deadline_ms) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "queued %.3f ms > deadline %.3f ms",
                  waited_ms, task.deadline_ms);
    return replicate(Response::deadline(buf));
  }
  const auto breaker_it = breakers_.find(task.request.fu);
  if (breaker_it == breakers_.end()) {
    return replicate(Response::error(
        ErrorCode::kUnknownFu, "unknown fu '" + task.request.fu + "'"));
  }
  const core::TevotModel* model =
      task.models != nullptr ? task.models->find(task.request.fu) : nullptr;
  if (model == nullptr) {
    return replicate(Response::error(
        ErrorCode::kModelUnavailable,
        "no model loaded for '" + task.request.fu + "'"));
  }
  CircuitBreaker& breaker = breaker_it->second;
  if (!breaker.allow()) {
    return replicate(Response::error(
        ErrorCode::kBreakerOpen,
        "breaker open for '" + task.request.fu + "'"));
  }
  const bool is_batch = task.request.kind == RequestKind::kPredictBatch;
  std::vector<double> delays(lines, 0.0);
  try {
    // serve.slow (delay) is a separate point from serve.predict
    // (failure) so tests can arm slow backends without also arming
    // failures — the deterministic way to fill the admission queue.
    faults_->maybeDelay("serve.slow", std::to_string(task.id));
    faults_->maybeThrow("serve.predict", std::to_string(task.id));
    const liberty::Corner corner{task.request.voltage,
                                 task.request.temperature};
    if (is_batch) {
      std::vector<core::DelayQuery> queries(task.request.batch.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const BatchOperand& operand = task.request.batch[i];
        queries[i] = {operand.a, operand.b, operand.prev_a, operand.prev_b,
                      corner};
      }
      model->predictDelayBatch(queries, delays);
    } else {
      delays[0] = model->predictDelay(task.request.a, task.request.b,
                                      task.request.prev_a,
                                      task.request.prev_b, corner);
    }
  } catch (const util::StatusError& error) {
    breaker.recordFailure();
    const ErrorCode code =
        error.status().code == util::StatusCode::kFaultInjected
            ? ErrorCode::kFaultInjected
            : ErrorCode::kInternal;
    return replicate(Response::error(code, error.status().message));
  } catch (const std::exception& error) {
    breaker.recordFailure();
    return replicate(Response::error(ErrorCode::kInternal, error.what()));
  }
  breaker.recordSuccess();
  const double total_ms = msSince(task.arrival);
  if (task.deadline_ms > 0.0 && total_ms > task.deadline_ms) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "served in %.3f ms > deadline %.3f ms",
                  total_ms, task.deadline_ms);
    return replicate(Response::deadline(buf));
  }
  metrics_.recordLatencyMs(total_ms);
  std::vector<Response> responses;
  responses.reserve(lines);
  for (const double delay_ps : delays) {
    responses.push_back(
        Response::ok(delay_ps, delay_ps > task.request.tclk_ps));
  }
  return responses;
}

void Server::writeResponse(Connection* connection,
                           const Response& response) {
  writeResponses(connection, std::span<const Response>(&response, 1));
}

void Server::writeResponses(Connection* connection,
                            std::span<const Response> responses) {
  std::string lines;
  for (const Response& response : responses) {
    switch (response.status) {
      case ResponseStatus::kOk:
        metrics_.ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kShed:
        metrics_.shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kDeadline:
        metrics_.deadline.fetch_add(1, std::memory_order_relaxed);
        break;
      case ResponseStatus::kError:
        metrics_.errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    lines += response.serialize();
    lines += '\n';
  }
  sendAll(connection->fd.get(), lines.data(), lines.size());
}

MetricsSnapshot Server::drainAndStop() {
  bool was_running = true;
  if (!running_.compare_exchange_strong(was_running, false)) {
    return stats();  // already stopped (or never started)
  }
  draining_.store(true);
  // Wake the acceptor out of poll and stop new connections.
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  // Half-close every live connection: readers see EOF once the
  // in-flight request (if any) has been answered; writes still flow.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.fd.valid()) {
        ::shutdown(connection.fd.get(), SHUT_RD);
      }
    }
  }
  // Give admitted work the drain budget, then shed the remainder.
  const Clock::time_point drain_start = Clock::now();
  while (queue_->size() > 0 || in_flight_.load() > 0) {
    if (options_.drain_deadline_ms > 0.0 &&
        msSince(drain_start) > options_.drain_deadline_ms) {
      shed_all_.store(true);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  queue_->close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.thread.joinable()) connection.thread.join();
    }
    connections_.clear();
  }
  listen_fd_.reset();
  const MetricsSnapshot final_stats = stats();
  util::logInfo() << "serve: drained; " << final_stats.toLine();
  return final_stats;
}

}  // namespace tevot::serve

// Static timing analysis.
//
// Computes worst-case arrival times by topological traversal using the
// pessimistic max(rise, fall) arc delay per gate — the classic
// sensitization-blind longest path. This is exactly the quantity the
// paper's Delay-based baseline uses ("the maximum delay measured
// offline at each operating condition") and what the DTA phase uses to
// choose an error-free base clock period.
#pragma once

#include <vector>

#include "liberty/corner.hpp"
#include "netlist/netlist.hpp"

namespace tevot::sta {

struct StaResult {
  /// Worst-case arrival time at each net [ps], index by NetId.
  std::vector<double> arrival_ps;
  /// Critical-path delay: max arrival over primary outputs [ps].
  double critical_path_ps = 0.0;
  /// Nets of the critical path, from a primary input to the latest
  /// primary output.
  std::vector<netlist::NetId> critical_path;
};

/// Runs STA on `nl` with per-gate delays from `delays`.
StaResult analyze(const netlist::Netlist& nl,
                  const liberty::CornerDelays& delays);

/// Convenience: just the critical-path delay [ps].
double criticalPathPs(const netlist::Netlist& nl,
                      const liberty::CornerDelays& delays);

}  // namespace tevot::sta

#include "sta/sta.hpp"

#include <algorithm>
#include <stdexcept>

namespace tevot::sta {

using netlist::Gate;
using netlist::GateId;
using netlist::kNoGate;
using netlist::NetId;

StaResult analyze(const netlist::Netlist& nl,
                  const liberty::CornerDelays& delays) {
  if (delays.gateCount() != nl.gateCount()) {
    throw std::invalid_argument("sta::analyze: delay annotation mismatch");
  }
  StaResult result;
  result.arrival_ps.assign(nl.netCount(), 0.0);
  // Predecessor net on the worst path into each net, for traceback.
  std::vector<NetId> worst_pred(nl.netCount(), netlist::kNoNet);

  for (GateId g = 0; g < nl.gateCount(); ++g) {
    const Gate& gate = nl.gate(g);
    const double arc =
        std::max(delays.rise_ps[g], delays.fall_ps[g]);
    double worst_in = 0.0;
    NetId pred = netlist::kNoNet;
    for (int i = 0; i < gate.fanin; ++i) {
      const double a = result.arrival_ps[gate.in[i]];
      if (pred == netlist::kNoNet || a > worst_in) {
        worst_in = a;
        pred = gate.in[i];
      }
    }
    result.arrival_ps[gate.out] = worst_in + arc;
    worst_pred[gate.out] = pred;
  }

  NetId latest = netlist::kNoNet;
  for (const NetId out : nl.outputs()) {
    if (latest == netlist::kNoNet ||
        result.arrival_ps[out] > result.arrival_ps[latest]) {
      latest = out;
    }
  }
  if (latest != netlist::kNoNet) {
    result.critical_path_ps = result.arrival_ps[latest];
    for (NetId n = latest; n != netlist::kNoNet; n = worst_pred[n]) {
      result.critical_path.push_back(n);
    }
    std::reverse(result.critical_path.begin(), result.critical_path.end());
  }
  return result;
}

double criticalPathPs(const netlist::Netlist& nl,
                      const liberty::CornerDelays& delays) {
  return analyze(nl, delays).critical_path_ps;
}

}  // namespace tevot::sta

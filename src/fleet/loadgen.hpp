// Open-loop load generator for tevot_serve / tevot_router.
//
// Heavy-traffic replay: `connections` client threads each follow an
// open-loop arrival schedule — the next send time is drawn from the
// arrival process up front, independent of response latency, so a
// slowing server faces mounting pressure instead of a politely
// backing-off closed loop. (Within one connection the newline
// protocol is strictly request→response; when a response is still
// outstanding at the next arrival the send happens as soon as the
// response lands and the arrival is counted as late. Aggregate
// open-loop behavior comes from the connection count.)
//
// Arrival processes (per connection, at rate_qps / connections):
//   kPoisson  exponential inter-arrival gaps
//   kUniform  fixed gaps
//   kBursty   on/off modulation: kBurstOnFraction of each
//             kBurstCycleMs cycle fires Poisson arrivals at
//             1/kBurstOnFraction times the average rate, the rest is
//             silence — same average rate, much nastier peaks
//
// Traffic mix: plain predict, predictN batches (batch_fraction,
// batch_tuples each) and malformed lines (malformed_fraction) that
// must come back non-OK. Every expected response line is awaited and
// classified; a line the server never produces is a no_response —
// the exactly-one-response contract makes that count a finding, not
// noise. All randomness derives from options.seed, so a run is
// exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/stats.hpp"

namespace tevot::fleet {

enum class Arrival { kPoisson, kUniform, kBursty };

const char* arrivalName(Arrival arrival);  ///< "poisson"/"uniform"/"bursty"
bool parseArrival(std::string_view text, Arrival* out);

struct LoadgenOptions {
  int port = 0;                ///< router or single server, 127.0.0.1
  std::string fu = "int_add";
  double duration_s = 2.0;
  double rate_qps = 2000.0;    ///< aggregate target arrival rate
  Arrival arrival = Arrival::kPoisson;
  int connections = 8;
  double batch_fraction = 0.2;     ///< predictN probability
  std::size_t batch_tuples = 16;   ///< tuples per predictN
  double malformed_fraction = 0.02;
  double deadline_ms = 0.0;        ///< per-request deadline; 0 = none
  std::uint64_t seed = 1;
  /// Cooperative-stop hook, polled between arrivals and during
  /// inter-arrival sleeps (sleeps are sliced so a stop is honored
  /// within ~50 ms). When it returns true every connection finishes
  /// its in-flight request — the exactly-one-response classification
  /// stays intact — and the partial report is still valid and marked
  /// interrupted. Null = run to duration_s. tevot_loadgen wires
  /// SIGINT/SIGTERM through this.
  std::function<bool()> stop;
};

struct LoadgenReport {
  std::uint64_t lines_sent = 0;          ///< request lines
  std::uint64_t responses_expected = 0;  ///< response lines due back
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t errors = 0;
  std::uint64_t malformed_sent = 0;
  std::uint64_t malformed_ok = 0;   ///< garbage answered OK (violation)
  std::uint64_t no_response = 0;    ///< expected lines never received
  std::uint64_t unparseable = 0;    ///< response outside the taxonomy
  std::uint64_t reconnects = 0;
  std::uint64_t late_arrivals = 0;  ///< sends behind the open-loop plan
  /// The storm was cut short by the stop hook; counters cover the
  /// portion that ran and are internally consistent.
  bool interrupted = false;
  double wall_s = 0.0;
  double offered_qps = 0.0;   ///< responses_expected / wall
  double achieved_qps = 0.0;  ///< classified responses / wall
  util::LatencyHistogram latency;  ///< request send -> last line

  std::uint64_t responsesReceived() const {
    return ok + shed + deadline + errors;
  }

  /// Merges a per-connection partial report (histograms bucket-exact).
  void mergeFrom(const LoadgenReport& other);

  std::string summaryLine() const;

  /// The BENCH_fleet_loadgen.json payload (bench-JSON style flat
  /// object). `label` tags the scenario ("burst", "steady", …).
  std::string toJson(const std::string& label,
                     const LoadgenOptions& options) const;
};

/// Runs the storm and blocks until duration_s elapsed and every
/// outstanding response was awaited.
LoadgenReport runLoadgen(const LoadgenOptions& options);

}  // namespace tevot::fleet

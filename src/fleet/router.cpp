#include "fleet/router.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/log.hpp"

namespace tevot::fleet {

namespace {

constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

bool sendAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* shardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kReplicated: return "replicated";
    case ShardPolicy::kPerFu: return "per-fu";
  }
  return "?";
}

bool parseShardPolicy(std::string_view text, ShardPolicy* out) {
  if (text == "replicated") {
    *out = ShardPolicy::kReplicated;
    return true;
  }
  if (text == "per-fu") {
    *out = ShardPolicy::kPerFu;
    return true;
  }
  return false;
}

Router::Router(RouterOptions options, std::vector<ShardEndpoint> shards)
    : options_(std::move(options)) {
  if (options_.forward_attempts < 1) options_.forward_attempts = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
  shards_.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.breaker));
    shards_.back()->port.store(shards[i].port);
    shards_.back()->fus = std::move(shards[i].fus);
    for (const std::string& fu : shards_.back()->fus) {
      fu_owner_.emplace(fu, i);
    }
  }
}

Router::~Router() {
  if (running_.load()) drainAndStop();
}

double Router::msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

util::Status Router::start() {
  if (running_.load()) {
    return util::Status::invalidArgument("router already running");
  }
  if (shards_.empty()) {
    return util::Status::invalidArgument("router needs at least one shard");
  }
  if (options_.policy == ShardPolicy::kPerFu && fu_owner_.empty()) {
    return util::Status::invalidArgument(
        "per-fu policy needs shard fu assignments");
  }
  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Status::ioError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::ioError("bind 127.0.0.1:" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(errno));
  }
  if (::listen(fd.get(), 128) != 0) {
    return util::Status::ioError(std::string("listen: ") +
                                 std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return util::Status::ioError(std::string("getsockname: ") +
                                 std::strerror(errno));
  }
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = std::move(fd);

  draining_.store(false);
  running_.store(true);
  // One synchronous probe round so freshly started fleets route
  // immediately instead of shedding until the first health tick.
  {
    std::vector<BackendConn> conns(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i]->breaker.allow()) probeShard(i, &conns[i]);
    }
  }
  health_ = std::thread([this] { healthLoop(); });
  acceptor_ = std::thread([this] { acceptLoop(); });
  util::logInfo() << "fleet: router listening on 127.0.0.1:" << bound_port_
                  << " shards=" << shards_.size()
                  << " policy=" << shardPolicyName(options_.policy);
  return util::Status::okStatus();
}

bool Router::shardEligible(std::size_t shard) const {
  if (shard >= shards_.size()) return false;
  const Shard& s = *shards_[shard];
  return s.port.load() > 0 && !s.admin_down.load() && s.probed_up.load() &&
         s.breaker.state() == serve::CircuitBreaker::State::kClosed;
}

void Router::markShardDown(std::size_t shard) {
  if (shard >= shards_.size()) return;
  shards_[shard]->probed_up.store(false);
  shards_[shard]->queue_permille.store(0);
}

void Router::setShardPort(std::size_t shard, int port) {
  if (shard >= shards_.size()) return;
  shards_[shard]->probed_up.store(false);
  shards_[shard]->queue_permille.store(0);
  shards_[shard]->port.store(port);
}

serve::MetricsSnapshot Router::stats() const {
  serve::MetricsSnapshot snap = metrics_.snapshot();
  std::uint64_t min_generation = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->breaker.state() != serve::CircuitBreaker::State::kClosed) {
      ++snap.breakers_open;
    }
    snap.breaker_opens += shard->breaker.opens();
    const std::lock_guard<std::mutex> lock(shard->stats_mutex);
    snap.queue_depth += shard->last_stats.queue_depth;
    snap.queue_capacity += shard->last_stats.queue_capacity;
    const std::uint64_t generation = shard->last_stats.generation;
    if (generation > 0 &&
        (min_generation == 0 || generation < min_generation)) {
      min_generation = generation;
    }
  }
  snap.generation = min_generation;
  return snap;
}

serve::MetricsSnapshot Router::workerStats() const {
  serve::MetricsSnapshot merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->stats_mutex);
    merged.mergeFrom(shard->last_stats);
  }
  return merged;
}

bool Router::probeShard(std::size_t index, BackendConn* conn) {
  Shard& shard = *shards_[index];
  const int port = shard.port.load();
  if (port <= 0) return false;
  const auto fail = [&] {
    conn->client.close();
    shard.breaker.recordFailure();
    return false;
  };
  if (!conn->client.connected() || conn->port != port) {
    conn->port = port;
    if (!conn->client.connectTo(port, options_.backend_timeout_ms).ok()) {
      return fail();
    }
  }
  if (!conn->client.sendLine("stats")) return fail();
  const std::optional<std::string> raw = conn->client.readLine();
  if (!raw.has_value()) return fail();
  serve::Response response;
  if (!serve::parseResponse(*raw, &response) ||
      response.status != serve::ResponseStatus::kOk) {
    return fail();
  }
  // The stats payload is "stats <k=v line>"; parse it exactly.
  std::string_view detail = response.detail;
  serve::MetricsSnapshot worker;
  if (!serve::parseMetricsLine(detail, &worker)) return fail();
  {
    const std::lock_guard<std::mutex> lock(shard.stats_mutex);
    shard.last_stats = worker;
  }
  const std::uint32_t permille =
      worker.queue_capacity == 0
          ? 0
          : static_cast<std::uint32_t>(
                (worker.queue_depth * 1024) / worker.queue_capacity);
  shard.queue_permille.store(permille);
  shard.breaker.recordSuccess();
  shard.probed_up.store(true);
  return true;
}

void Router::healthLoop() {
  std::vector<BackendConn> conns(shards_.size());
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.health_interval_ms);
  while (!draining_.load()) {
    for (std::size_t i = 0; i < shards_.size() && !draining_.load(); ++i) {
      // allow() drives OPEN -> HALF_OPEN once the cooldown elapses;
      // while it refuses, the shard rests and routing skips it.
      if (shards_[i]->breaker.allow()) probeShard(i, &conns[i]);
    }
    // Sleep in small ticks so drain isn't held up by a long interval.
    auto remaining = interval;
    while (remaining.count() > 0.0 && !draining_.load()) {
      const auto tick = std::min(
          remaining, std::chrono::duration<double, std::milli>(10.0));
      std::this_thread::sleep_for(tick);
      remaining -= tick;
    }
  }
}

void Router::acceptLoop() {
  while (!draining_.load()) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::logWarn() << "fleet: poll: " << std::strerror(errno);
      break;
    }
    reapFinishedConnections();
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    util::UniqueFd conn(::accept4(listen_fd_.get(), nullptr, nullptr,
                                  SOCK_CLOEXEC));
    if (!conn.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down under us (drain) or fatal
    }
    metrics_.connections.fetch_add(1, std::memory_order_relaxed);
    std::size_t live = 0;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      live = connections_.size();
    }
    if (live >= options_.max_connections) {
      const serve::Response shed =
          serve::Response::shed("connection limit");
      const std::string line = shed.serialize() + "\n";
      sendAll(conn.get(), line.data(), line.size());
      metrics_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back();
    Connection* entry = &connections_.back();
    entry->fd = std::move(conn);
    entry->thread = std::thread([this, entry] { connectionLoop(entry); });
  }
}

void Router::reapFinishedConnections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Router::connectionLoop(Connection* connection) {
  // Same line framing as serve::Server::connectionLoop, so a client
  // cannot distinguish the router from a single server.
  std::string buffer;
  bool discarding = false;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(connection->fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl == std::string::npos) {
        if (discarding) {
          buffer.clear();
        } else if (buffer.size() > serve::kMaxLineBytes) {
          metrics_.requests.fetch_add(1, std::memory_order_relaxed);
          writeResponses(
              connection,
              {serve::Response::error(
                   serve::ErrorCode::kOversized,
                   "request line exceeds " +
                       std::to_string(serve::kMaxLineBytes) + " bytes")
                   .serialize()});
          discarding = true;
          buffer.clear();
        }
        break;
      }
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (discarding) {
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > serve::kMaxLineBytes) {
        metrics_.requests.fetch_add(1, std::memory_order_relaxed);
        writeResponses(
            connection,
            {serve::Response::error(
                 serve::ErrorCode::kOversized,
                 "request line exceeds " +
                     std::to_string(serve::kMaxLineBytes) + " bytes")
                 .serialize()});
        continue;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      handleLine(connection, line);
    }
  }
  connection->done.store(true);
}

void Router::handleLine(Connection* connection, std::string_view line) {
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  serve::Request request;
  const util::Status parsed = serve::parseRequest(line, &request);
  if (!parsed.ok()) {
    // The router rejects malformed lines itself; garbage never
    // reaches a worker.
    writeResponses(connection,
                   {serve::responseForParseFailure(parsed).serialize()});
    return;
  }
  const std::size_t lines = request.responseCount();
  if (lines > 1) {
    metrics_.requests.fetch_add(lines - 1, std::memory_order_relaxed);
  }
  if (request.kind != serve::RequestKind::kPredict &&
      request.kind != serve::RequestKind::kPredictBatch) {
    writeResponses(connection, {handleControl(request).serialize()});
    return;
  }
  if (draining_.load()) {
    std::vector<std::string> shed(
        lines, serve::Response::shed("draining").serialize());
    writeResponses(connection, shed);
    return;
  }
  routePredict(connection, request, std::string(line));
}

serve::Response Router::handleControl(const serve::Request& request) {
  switch (request.kind) {
    case serve::RequestKind::kHealth: {
      std::size_t healthy = 0;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shardEligible(i)) ++healthy;
      }
      char buf[192];
      std::snprintf(
          buf, sizeof(buf),
          "health status=%s shards=%zu healthy=%zu policy=%s "
          "generation=%llu",
          draining_.load() ? "draining" : "serving", shards_.size(),
          healthy, shardPolicyName(options_.policy),
          static_cast<unsigned long long>(stats().generation));
      return serve::Response::payload(buf);
    }
    case serve::RequestKind::kStats:
      return serve::Response::payload("stats " + stats().toLine());
    case serve::RequestKind::kReload: {
      const util::Status status = rollingReload();
      if (!status.ok()) {
        return serve::Response::error(serve::ErrorCode::kReloadFailed,
                                      status.message);
      }
      return serve::Response::payload(
          "reload generation=" + std::to_string(stats().generation) +
          " shards=" + std::to_string(shards_.size()));
    }
    case serve::RequestKind::kPredict:
    case serve::RequestKind::kPredictBatch:
      break;
  }
  return serve::Response::error(serve::ErrorCode::kInternal,
                                "bad control dispatch");
}

std::size_t Router::pickShard(const serve::Request& request,
                              const std::vector<bool>& exclude) const {
  const auto admissible = [&](std::size_t i) {
    return shardEligible(i) && !exclude[i] &&
           shards_[i]->queue_permille.load() <
               static_cast<std::uint32_t>(options_.shed_queue_fraction *
                                          1024.0);
  };
  if (options_.policy == ShardPolicy::kPerFu) {
    const auto owner = fu_owner_.find(request.fu);
    if (owner == fu_owner_.end()) return kNoShard;
    return admissible(owner->second) ? owner->second : kNoShard;
  }
  const std::size_t n = shards_.size();
  const std::uint64_t start =
      round_robin_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t index = (start + i) % n;
    if (admissible(index)) return index;
  }
  return kNoShard;
}

void Router::routePredict(Connection* connection,
                          const serve::Request& request,
                          const std::string& line) {
  const std::size_t lines = request.responseCount();
  const Clock::time_point arrival = Clock::now();

  // Per-FU requests for a FU no shard owns are refused up front with
  // the same typed error a worker would produce.
  if (options_.policy == ShardPolicy::kPerFu &&
      fu_owner_.find(request.fu) == fu_owner_.end()) {
    std::vector<std::string> responses(
        lines, serve::Response::error(serve::ErrorCode::kUnknownFu,
                                      "unknown fu '" + request.fu + "'")
                   .serialize());
    writeResponses(connection, responses);
    return;
  }

  std::vector<bool> tried(shards_.size(), false);
  for (int attempt = 0; attempt < options_.forward_attempts; ++attempt) {
    const std::size_t index = pickShard(request, tried);
    if (index == kNoShard) break;
    // Reroute (kReplicated) excludes shards already tried; the per-FU
    // owner is retried over a fresh connection instead.
    if (options_.policy == ShardPolicy::kReplicated) tried[index] = true;
    Shard& shard = *shards_[index];
    shard.in_flight.fetch_add(1, std::memory_order_acq_rel);
    BackendConn& backend = connection->backends[index];
    const int port = shard.port.load();
    bool forwarded = false;
    std::vector<std::string> responses;
    responses.reserve(lines);
    if (!backend.client.connected() || backend.port != port) {
      backend.port = port;
      if (!backend.client.connectTo(port, options_.backend_timeout_ms)
               .ok()) {
        backend.client.close();
      }
    }
    if (backend.client.connected() && backend.client.sendLine(line)) {
      while (responses.size() < lines) {
        std::optional<std::string> response = backend.client.readLine();
        if (!response.has_value()) break;
        responses.push_back(std::move(*response));
      }
      if (responses.size() == lines) {
        forwarded = true;
      } else if (!responses.empty()) {
        // The shard died mid-batch: the relayed prefix cannot be
        // retried (duplicates), so the remainder degrades to typed
        // errors and the batch still answers with exactly n lines.
        backend.client.close();
        shard.breaker.recordFailure();
        while (responses.size() < lines) {
          responses.push_back(
              serve::Response::error(serve::ErrorCode::kInternal,
                                     "shard connection lost mid-batch")
                  .serialize());
        }
        forwarded = true;
      }
    }
    shard.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    if (forwarded) {
      metrics_.recordLatencyMs(msSince(arrival));
      writeResponses(connection, responses);
      return;
    }
    // Nothing was relayed: safe to reroute/retry this idempotent
    // request after recording the backend failure.
    backend.client.close();
    shard.breaker.recordFailure();
  }
  std::vector<std::string> shed(
      lines, serve::Response::shed("no eligible shard").serialize());
  writeResponses(connection, shed);
}

void Router::writeResponses(Connection* connection,
                            const std::vector<std::string>& lines) {
  std::string wire;
  for (const std::string& line : lines) {
    serve::Response response;
    if (serve::parseResponse(line, &response)) {
      switch (response.status) {
        case serve::ResponseStatus::kOk:
          metrics_.ok.fetch_add(1, std::memory_order_relaxed);
          break;
        case serve::ResponseStatus::kShed:
          metrics_.shed.fetch_add(1, std::memory_order_relaxed);
          break;
        case serve::ResponseStatus::kDeadline:
          metrics_.deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case serve::ResponseStatus::kError:
          metrics_.errors.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    } else {
      // A worker emitting an unparseable line is a worker bug; it is
      // still relayed (the oracle flags it), but counted as an error.
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    }
    wire += line;
    wire += '\n';
  }
  sendAll(connection->fd.get(), wire.data(), wire.size());
}

util::Status Router::rollingReload() {
  const std::lock_guard<std::mutex> lock(reload_mutex_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    const int port = shard.port.load();
    // A down shard is skipped, not an error: its supervisor restart
    // loads the new models anyway.
    if (port <= 0 || !shard.probed_up.load()) continue;
    shard.admin_down.store(true);
    const Clock::time_point drain_start = Clock::now();
    while (shard.in_flight.load() > 0 &&
           msSince(drain_start) < options_.reload_drain_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    serve::LineClient admin;
    util::Status failure = util::Status::okStatus();
    if (!admin.connectTo(port, options_.backend_timeout_ms).ok()) {
      failure = util::Status::ioError("shard " + std::to_string(i) +
                                      ": reload connect failed");
    } else if (!admin.sendLine("reload")) {
      failure = util::Status::ioError("shard " + std::to_string(i) +
                                      ": reload send failed");
    } else {
      const std::optional<std::string> raw = admin.readLine();
      serve::Response response;
      if (!raw.has_value() ||
          !serve::parseResponse(*raw, &response)) {
        failure = util::Status::ioError("shard " + std::to_string(i) +
                                        ": no reload response");
      } else if (response.status != serve::ResponseStatus::kOk) {
        failure = util::Status::ioError("shard " + std::to_string(i) +
                                        ": " + *raw);
      }
    }
    shard.admin_down.store(false);
    if (!failure.ok()) {
      metrics_.reload_failures.fetch_add(1, std::memory_order_relaxed);
      util::logWarn() << "fleet: rolling reload aborted: "
                      << failure.message;
      return failure;
    }
    metrics_.reloads.fetch_add(1, std::memory_order_relaxed);
  }
  util::logInfo() << "fleet: rolling reload complete";
  return util::Status::okStatus();
}

serve::MetricsSnapshot Router::drainAndStop() {
  bool was_running = true;
  if (!running_.compare_exchange_strong(was_running, false)) {
    return stats();
  }
  draining_.store(true);
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (health_.joinable()) health_.join();
  // Half-close client connections: readers see EOF after the response
  // for their in-flight request (if any) has been relayed.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.fd.valid()) {
        ::shutdown(connection.fd.get(), SHUT_RD);
      }
    }
  }
  const Clock::time_point drain_start = Clock::now();
  for (;;) {
    bool all_done = true;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const Connection& connection : connections_) {
        if (!connection.done.load()) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done) break;
    if (options_.drain_deadline_ms > 0.0 &&
        msSince(drain_start) > options_.drain_deadline_ms) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.thread.joinable()) connection.thread.join();
    }
    connections_.clear();
  }
  listen_fd_.reset();
  const serve::MetricsSnapshot final_stats = stats();
  util::logInfo() << "fleet: router drained; " << final_stats.toLine();
  return final_stats;
}

}  // namespace tevot::fleet

#include "fleet/supervisor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/log.hpp"

namespace tevot::fleet {

namespace {

/// Reads the child's stdout through `fd` until the port announcement
/// or EOF/timeout; returns the port (<= 0 on failure).
int readAnnouncement(int fd, double timeout_ms) {
  const char* marker = "listening on 127.0.0.1:";
  std::string out;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  char c = 0;
  for (;;) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0) return -1;
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return -1;
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return -1;  // child exited before announcing
    if (c != '\n') {
      out.push_back(c);
      continue;
    }
    const std::size_t pos = out.find(marker);
    if (pos != std::string::npos) {
      return std::atoi(out.c_str() + pos + std::strlen(marker));
    }
    out.clear();
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  workers_.resize(options_.shards);
  options_.fus.resize(options_.shards);
}

Supervisor::~Supervisor() { stopAll(0.0); }

util::Status Supervisor::spawnShard(std::size_t shard) {
  Worker& worker = workers_[shard];
  worker.pid = -1;
  worker.port = 0;
  int out_pipe[2];
  if (::pipe(out_pipe) != 0) {
    return util::Status::ioError(std::string("pipe: ") +
                                 std::strerror(errno));
  }
  const std::string workers_arg = std::to_string(options_.worker_threads);
  const std::string queue_arg = std::to_string(options_.queue_capacity);
  const std::string deadline_arg =
      std::to_string(options_.default_deadline_ms);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return util::Status::ioError(std::string("fork: ") +
                                 std::strerror(errno));
  }
  if (pid == 0) {
    ::close(out_pipe[0]);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[1]);
    // stderr is inherited: worker logs and final drain stats land on
    // the supervisor's stderr stream.
    std::vector<const char*> argv = {
        options_.serve_binary.c_str(), "--model-dir",
        options_.model_dir.c_str(),    "--port",
        "0",                           "--workers",
        workers_arg.c_str(),           "--queue",
        queue_arg.c_str()};
    if (options_.default_deadline_ms > 0.0) {
      argv.push_back("--deadline-ms");
      argv.push_back(deadline_arg.c_str());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], const_cast<char* const*>(argv.data()));
    std::fprintf(stderr, "fleet: execv %s: %s\n",
                 options_.serve_binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  const int port = readAnnouncement(out_pipe[0], options_.announce_timeout_ms);
  ::close(out_pipe[0]);
  if (port <= 0) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return util::Status::ioError("shard " + std::to_string(shard) +
                                 ": worker never announced a port");
  }
  worker.pid = pid;
  worker.port = port;
  util::logInfo() << "fleet: shard " << shard << " pid " << pid
                  << " port " << port;
  if (options_.on_spawn) options_.on_spawn(shard, pid, port);
  return util::Status::okStatus();
}

util::Status Supervisor::startAll() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const util::Status status = spawnShard(i);
    if (!status.ok()) {
      stopAll(0.0);
      return status;
    }
  }
  return util::Status::okStatus();
}

std::vector<ShardEndpoint> Supervisor::endpoints() const {
  std::vector<ShardEndpoint> endpoints;
  endpoints.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    endpoints.push_back({workers_[i].port, options_.fus[i]});
  }
  return endpoints;
}

int Supervisor::poll() {
  int respawned = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& worker = workers_[i];
    if (worker.pid < 0 || worker.abandoned) continue;
    int status = 0;
    const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
    if (reaped != worker.pid) continue;
    util::logWarn() << "fleet: shard " << i << " (pid " << worker.pid
                    << ") died ("
                    << (WIFSIGNALED(status)
                            ? "signal " + std::to_string(WTERMSIG(status))
                            : "exit " +
                                  std::to_string(WEXITSTATUS(status)))
                    << ")";
    worker.pid = -1;
    if (router_ != nullptr) router_->markShardDown(i);
    if (++worker.restarts > options_.max_restarts) {
      worker.abandoned = true;
      util::logWarn() << "fleet: shard " << i << " abandoned after "
                      << options_.max_restarts << " restarts";
      continue;
    }
    const util::Status status_respawn = spawnShard(i);
    if (!status_respawn.ok()) {
      util::logWarn() << "fleet: shard " << i
                      << " respawn failed: " << status_respawn.message;
      continue;
    }
    if (router_ != nullptr) router_->setShardPort(i, worker.port);
    ++respawned;
  }
  return respawned;
}

pid_t Supervisor::shardPid(std::size_t shard) const {
  return shard < workers_.size() ? workers_[shard].pid : -1;
}

int Supervisor::shardPort(std::size_t shard) const {
  return shard < workers_.size() ? workers_[shard].port : 0;
}

int Supervisor::shardRestarts(std::size_t shard) const {
  return shard < workers_.size() ? workers_[shard].restarts : 0;
}

void Supervisor::stopAll(double term_wait_ms) {
  for (Worker& worker : workers_) {
    if (worker.pid < 0) continue;
    ::kill(worker.pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(term_wait_ms));
  for (Worker& worker : workers_) {
    if (worker.pid < 0) continue;
    int status = 0;
    for (;;) {
      const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
      if (reaped == worker.pid) {
        worker.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, &status, 0);
        worker.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

}  // namespace tevot::fleet

// Front router of the TEVoT serving fleet.
//
// The router accepts the exact tevot_serve newline protocol on one
// loopback port and fans predict/predictN requests out over loopback
// TCP to N worker shards (each a serve::Server with its own ModelSet).
// Clients cannot tell a router from a single server: every request
// line still gets exactly one well-formed typed response (predictN: n
// lines), and relayed OK lines pass through byte-for-byte, so the
// hexfloat bit-identity contract of the single-server oracle holds
// end to end through the fleet.
//
// Sharding policies:
//   kReplicated  every shard serves every FU; requests round-robin
//                over the eligible shards, and a failed forward
//                reroutes to a sibling (predicts are idempotent, and
//                rerouting only happens before the first response
//                line has been relayed).
//   kPerFu       each shard owns a fixed FU subset (ShardEndpoint::
//                fus); the owner is the only target, so a failed
//                forward retries the same shard and then degrades to
//                a typed SHED.
//
// Eligibility and the backpressure contract: a shard is routed to
// only while (a) it is not administratively down (rolling reload /
// supervisor restart window), (b) its circuit breaker is CLOSED, and
// (c) its queue fraction — queue_depth/queue_capacity from the last
// polled worker stats line — is below shed_queue_fraction. The
// health thread polls each shard's in-band `stats` every
// health_interval_ms, feeds the breaker (probe failures open it;
// OPEN shards are skipped by routing until a cooled-down probe
// succeeds), and caches the parsed worker snapshot for fleet-wide
// aggregation (exact cross-process histogram merge). When no shard
// is eligible the router sheds with a typed SHED — backpressure is
// never a silent drop or an unbounded queue.
//
// Rolling zero-downtime reload (`reload` verb or tevot_router's
// SIGHUP): one shard at a time — mark admin-down (drain: new
// requests redirect to siblings under kReplicated and shed under
// kPerFu), wait for that shard's in-flight count to reach zero, send
// the in-band `reload`, verify the generation bump, mark admin-up,
// proceed. A failing shard reload aborts the roll with the remaining
// shards untouched (their previous models keep serving).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/breaker.hpp"
#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/fd.hpp"
#include "util/status.hpp"

namespace tevot::fleet {

enum class ShardPolicy { kReplicated, kPerFu };

const char* shardPolicyName(ShardPolicy policy);  ///< "replicated"/"per-fu"
/// Parses "replicated"/"per-fu"; false on anything else.
bool parseShardPolicy(std::string_view text, ShardPolicy* out);

/// One worker shard as the router sees it: a loopback port plus (for
/// kPerFu) the FU names it owns. An empty fus list under kPerFu owns
/// nothing; under kReplicated fus is ignored.
struct ShardEndpoint {
  int port = 0;
  std::vector<std::string> fus;
};

struct RouterOptions {
  /// Front listen port on 127.0.0.1; 0 binds an ephemeral port.
  int port = 0;
  ShardPolicy policy = ShardPolicy::kReplicated;
  std::size_t max_connections = 64;
  /// Worker stats poll + breaker probe cadence.
  double health_interval_ms = 50.0;
  /// Shed new requests for a shard whose polled queue_depth /
  /// queue_capacity is at or above this fraction.
  double shed_queue_fraction = 0.9;
  /// Total forward attempts per request (first try included).
  int forward_attempts = 3;
  /// SO_RCVTIMEO on backend connections: bounds how long a dead or
  /// wedged shard can stall a relay before it degrades to a typed
  /// response. 0 disables the timeout.
  double backend_timeout_ms = 5000.0;
  /// Per-shard health breaker (probe failures open it).
  serve::BreakerConfig breaker{.failure_threshold = 3,
                               .cooldown_ms = 100.0};
  /// Budget for drainAndStop() to finish relaying admitted work.
  double drain_deadline_ms = 2000.0;
  /// Budget for the per-shard in-flight drain during rollingReload().
  double reload_drain_ms = 1000.0;
};

class Router {
 public:
  Router(RouterOptions options, std::vector<ShardEndpoint> shards);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the front port and starts the acceptor + health threads.
  util::Status start();

  bool running() const { return running_.load(); }
  int port() const { return bound_port_; }
  std::size_t shardCount() const { return shards_.size(); }

  /// Router-side accounting: requests == ok+shed+deadline+errors over
  /// everything the router answered (relayed or self-generated), with
  /// router-measured latency. Gauges summarize the fleet: queue =
  /// summed worker queues, breakers_open = open shard breakers,
  /// generation = minimum worker generation.
  serve::MetricsSnapshot stats() const;

  /// Exact cross-process aggregation of the last polled worker stats
  /// lines: counters summed, latency histograms merged bucket-wise.
  serve::MetricsSnapshot workerStats() const;

  /// Rolling zero-downtime reload across the fleet; stops at the
  /// first shard whose reload fails (its previous models keep
  /// serving, later shards are not touched).
  util::Status rollingReload();

  /// True while the shard is routed to (admin-up, breaker closed).
  bool shardEligible(std::size_t shard) const;

  /// Supervisor hooks around a worker restart: markShardDown removes
  /// the shard from rotation immediately (faster than waiting for
  /// probe failures to open the breaker); setShardPort re-targets the
  /// shard after a respawn and re-admits it once a probe succeeds.
  void markShardDown(std::size_t shard);
  void setShardPort(std::size_t shard, int port);

  /// Graceful drain: stop accepting, let in-flight relays finish
  /// within drain_deadline_ms, join everything. Idempotent. Returns
  /// the final router-side stats.
  serve::MetricsSnapshot drainAndStop();

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::atomic<int> port{0};
    std::vector<std::string> fus;
    serve::CircuitBreaker breaker;
    std::atomic<bool> admin_down{false};
    /// True once a health probe has succeeded on the current port;
    /// cleared by markShardDown/setShardPort so a restarting shard
    /// re-enters rotation only after it answers a probe.
    std::atomic<bool> probed_up{false};
    std::atomic<std::size_t> in_flight{0};
    /// queue_depth/queue_capacity from the last poll, in 1/1024ths
    /// (atomic double is avoided for older toolchains).
    std::atomic<std::uint32_t> queue_permille{0};
    mutable std::mutex stats_mutex;
    serve::MetricsSnapshot last_stats;  ///< guarded by stats_mutex

    explicit Shard(const serve::BreakerConfig& config)
        : breaker(config) {}
  };

  /// A cached backend connection plus the port it was dialed on, so a
  /// supervisor-restarted shard (new port) forces a reconnect.
  struct BackendConn {
    int port = 0;
    serve::LineClient client;
  };

  struct Connection {
    util::UniqueFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Cached backend connections, one per shard, owned by this
    /// client connection's thread (no cross-thread sharing).
    std::map<std::size_t, BackendConn> backends;
  };

  void acceptLoop();
  void connectionLoop(Connection* connection);
  void healthLoop();
  void handleLine(Connection* connection, std::string_view line);
  serve::Response handleControl(const serve::Request& request);
  /// Routes one parsed predict/predictN; writes exactly
  /// request.responseCount() lines to the client.
  void routePredict(Connection* connection, const serve::Request& request,
                    const std::string& line);
  /// The next eligible shard for `request`, or npos. `exclude` skips
  /// shards already tried this request (reroute path).
  std::size_t pickShard(const serve::Request& request,
                        const std::vector<bool>& exclude) const;
  bool probeShard(std::size_t index, BackendConn* conn);
  void writeResponses(Connection* connection,
                      const std::vector<std::string>& lines);
  void reapFinishedConnections();
  static double msSince(Clock::time_point start);

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::size_t> fu_owner_;  ///< kPerFu routing map
  serve::ServeMetrics metrics_;

  util::UniqueFd listen_fd_;
  int bound_port_ = 0;

  std::thread acceptor_;
  std::thread health_;

  std::mutex connections_mutex_;
  std::list<Connection> connections_;
  std::mutex reload_mutex_;  ///< serializes rollingReload()s

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  mutable std::atomic<std::uint64_t> round_robin_{0};
};

}  // namespace tevot::fleet

// Worker-process supervision for the serving fleet.
//
// The Supervisor owns N tevot_serve worker subprocesses: it spawns
// each with --port 0, parses the "listening on 127.0.0.1:<port>"
// announcement from the child's stdout pipe, and hands the resulting
// ShardEndpoints to the Router. poll() reaps dead children
// (waitpid WNOHANG) and respawns them on a fresh ephemeral port,
// telling the attached Router to take the shard out of rotation
// immediately (markShardDown) and to re-target it after the respawn
// (setShardPort); the router's health probe re-admits the shard once
// it answers. A shard that keeps dying is abandoned after
// max_restarts (it stays down; the rest of the fleet keeps serving).
//
// Worker stderr is inherited, so worker logs — including each
// worker's final-stats drain line — land on the supervisor's stderr
// stream alongside the router's own summary.
#pragma once

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "fleet/router.hpp"
#include "util/status.hpp"

namespace tevot::fleet {

struct SupervisorOptions {
  std::string serve_binary;  ///< path to the tevot_serve executable
  std::string model_dir;
  std::size_t shards = 3;
  std::size_t worker_threads = 2;   ///< per-shard --workers
  std::size_t queue_capacity = 64;  ///< per-shard --queue
  double default_deadline_ms = 0.0;
  /// Give up on a shard after this many respawns.
  int max_restarts = 20;
  /// How long to wait for a child's port announcement.
  double announce_timeout_ms = 10000.0;
  /// kPerFu only: fus[i] lists the FU names shard i owns. Sized to
  /// `shards` (unused entries empty). Ignored under kReplicated.
  std::vector<std::vector<std::string>> fus;
  /// Called after every (re)spawn — the tevot_router binary uses it
  /// to announce "shard <i> pid <pid> port <port>" for scripts.
  std::function<void(std::size_t shard, pid_t pid, int port)> on_spawn;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every shard and waits for all port announcements.
  util::Status startAll();

  /// Router-facing endpoints (valid after startAll()).
  std::vector<ShardEndpoint> endpoints() const;

  /// Restart notifications go to this router (may be null).
  void attachRouter(Router* router) { router_ = router; }

  /// Reaps dead children and respawns them. Call periodically from
  /// the supervising loop. Returns the number of respawns performed.
  int poll();

  pid_t shardPid(std::size_t shard) const;
  int shardPort(std::size_t shard) const;
  int shardRestarts(std::size_t shard) const;

  /// SIGTERMs every live worker and waits up to term_wait_ms each for
  /// a clean drain; SIGKILLs stragglers. Idempotent.
  void stopAll(double term_wait_ms = 5000.0);

 private:
  struct Worker {
    pid_t pid = -1;
    int port = 0;
    int restarts = 0;
    bool abandoned = false;
  };

  /// Spawns one worker and fills pid/port; a failed spawn or a missed
  /// announcement returns an error with the shard left dead.
  util::Status spawnShard(std::size_t shard);

  SupervisorOptions options_;
  std::vector<Worker> workers_;
  Router* router_ = nullptr;
};

}  // namespace tevot::fleet

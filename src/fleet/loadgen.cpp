#include "fleet/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace tevot::fleet {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kBurstCycleMs = 500.0;
constexpr double kBurstOnFraction = 0.2;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Next inter-arrival gap [ms] at `rate_per_ms`; exponential for the
/// Poisson processes, fixed for uniform.
double nextGapMs(Arrival arrival, double rate_per_ms, util::Rng& rng) {
  switch (arrival) {
    case Arrival::kUniform:
      return 1.0 / rate_per_ms;
    case Arrival::kPoisson:
      return -std::log(1.0 - rng.nextDouble()) / rate_per_ms;
    case Arrival::kBursty:
      // Handled by the caller via burst gating; within a burst the
      // process is Poisson at the boosted rate.
      return -std::log(1.0 - rng.nextDouble()) /
             (rate_per_ms / kBurstOnFraction);
  }
  return 1.0 / rate_per_ms;
}

/// For kBursty: advances `at_ms` to the start of the next on-window
/// if it falls into an off-window. Cycle phase is offset per
/// connection so bursts are not fleet-synchronized.
double gateIntoBurst(double at_ms, double phase_ms) {
  const double cycle_pos =
      std::fmod(at_ms + phase_ms, kBurstCycleMs);
  const double on_ms = kBurstCycleMs * kBurstOnFraction;
  if (cycle_pos < on_ms) return at_ms;
  return at_ms + (kBurstCycleMs - cycle_pos);
}

std::string predictLine(const std::string& fu, util::Rng& rng,
                        double deadline_ms) {
  char buf[256];
  const double v = rng.nextDouble(0.81, 1.00);
  const double t = rng.nextDouble(0.0, 100.0);
  const double tclk = rng.nextDouble(50.0, 2000.0);
  int n = std::snprintf(buf, sizeof(buf), "predict %s %a %a %a %u %u %u %u",
                        fu.c_str(), v, t, tclk, rng.nextU32(),
                        rng.nextU32(), rng.nextU32(), rng.nextU32());
  if (deadline_ms > 0.0) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  " %a", deadline_ms);
  }
  return buf;
}

std::string malformedLine(const std::string& fu, util::Rng& rng) {
  switch (rng.nextBelow(5)) {
    case 0: return "bogus verb here";
    case 1: return "predict " + fu + " nan 25 100 1 2 3 4";
    case 2: return "predict " + fu;
    case 3: return "predictN " + fu + " 0.9 25 100 0";
    default: return "predict " + fu + " 0.9 25 0 1 2 3 4";
  }
}

void connectionRoutine(const LoadgenOptions& options, int index,
                       Clock::time_point start, LoadgenReport* out) {
  util::Rng rng(options.seed ^
                (0x9e3779b97f4a7c15ull *
                 static_cast<std::uint64_t>(index + 1)));
  LoadgenReport report;
  serve::LineClient client;
  const double per_conn_rate_ms =
      options.rate_qps /
      std::max(1, options.connections) / 1000.0;
  const double phase_ms =
      kBurstCycleMs * static_cast<double>(index) /
      std::max(1, options.connections);
  const double end_ms = options.duration_s * 1000.0;
  std::vector<serve::BatchOperand> tuples(options.batch_tuples);

  const auto stopped = [&options] {
    return options.stop && options.stop();
  };

  double next_ms = nextGapMs(options.arrival, per_conn_rate_ms, rng);
  if (options.arrival == Arrival::kBursty) {
    next_ms = gateIntoBurst(next_ms, phase_ms);
  }
  while (next_ms < end_ms) {
    if (stopped()) {
      report.interrupted = true;
      break;
    }
    // Open loop: sleep to the scheduled arrival; a behind-schedule
    // send goes out immediately and is counted as late. Sleeps are
    // sliced so the stop hook is honored promptly even with sparse
    // arrivals.
    constexpr double kSleepSliceMs = 50.0;
    double now_ms = msSince(start);
    if (now_ms >= next_ms) {
      ++report.late_arrivals;
    } else {
      bool stop_during_sleep = false;
      while (now_ms < next_ms) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                std::min(next_ms - now_ms, kSleepSliceMs)));
        if (stopped()) {
          stop_during_sleep = true;
          break;
        }
        now_ms = msSince(start);
      }
      if (stop_during_sleep) {
        report.interrupted = true;
        break;
      }
    }

    std::string line;
    std::size_t expected = 1;
    bool malformed = false;
    const double mix = rng.nextDouble();
    if (mix < options.malformed_fraction) {
      line = malformedLine(options.fu, rng);
      malformed = true;
      ++report.malformed_sent;
    } else if (mix < options.malformed_fraction + options.batch_fraction &&
               options.batch_tuples > 0) {
      for (serve::BatchOperand& tuple : tuples) {
        tuple = {rng.nextU32(), rng.nextU32(), rng.nextU32(),
                 rng.nextU32()};
      }
      line = serve::formatBatchRequest(
          options.fu, rng.nextDouble(0.81, 1.00),
          rng.nextDouble(0.0, 100.0), rng.nextDouble(50.0, 2000.0), tuples,
          options.deadline_ms);
      expected = tuples.size();
    } else {
      line = predictLine(options.fu, rng, options.deadline_ms);
    }

    if (!client.connected()) {
      if (client.connectTo(options.port).ok()) {
        ++report.reconnects;
      } else {
        report.no_response += expected;
        report.lines_sent += 1;
        report.responses_expected += expected;
        next_ms += nextGapMs(options.arrival, per_conn_rate_ms, rng);
        if (options.arrival == Arrival::kBursty) {
          next_ms = gateIntoBurst(next_ms, phase_ms);
        }
        continue;
      }
    }
    report.lines_sent += 1;
    report.responses_expected += expected;
    const Clock::time_point sent_at = Clock::now();
    if (!client.sendLine(line)) {
      client.close();
      report.no_response += expected;
    } else {
      std::size_t received = 0;
      for (; received < expected; ++received) {
        const std::optional<std::string> raw = client.readLine();
        if (!raw.has_value()) {
          client.close();
          break;
        }
        serve::Response response;
        if (!serve::parseResponse(*raw, &response)) {
          ++report.unparseable;
          continue;
        }
        switch (response.status) {
          case serve::ResponseStatus::kOk:
            ++report.ok;
            if (malformed) ++report.malformed_ok;
            break;
          case serve::ResponseStatus::kShed: ++report.shed; break;
          case serve::ResponseStatus::kDeadline:
            ++report.deadline;
            break;
          case serve::ResponseStatus::kError: ++report.errors; break;
        }
      }
      report.no_response += expected - received;
      if (received == expected) {
        report.latency.add(msSince(sent_at));
      }
    }

    next_ms += nextGapMs(options.arrival, per_conn_rate_ms, rng);
    if (options.arrival == Arrival::kBursty) {
      next_ms = gateIntoBurst(next_ms, phase_ms);
    }
  }
  out->mergeFrom(report);
}

}  // namespace

const char* arrivalName(Arrival arrival) {
  switch (arrival) {
    case Arrival::kPoisson: return "poisson";
    case Arrival::kUniform: return "uniform";
    case Arrival::kBursty: return "bursty";
  }
  return "?";
}

bool parseArrival(std::string_view text, Arrival* out) {
  if (text == "poisson") {
    *out = Arrival::kPoisson;
    return true;
  }
  if (text == "uniform") {
    *out = Arrival::kUniform;
    return true;
  }
  if (text == "bursty") {
    *out = Arrival::kBursty;
    return true;
  }
  return false;
}

void LoadgenReport::mergeFrom(const LoadgenReport& other) {
  lines_sent += other.lines_sent;
  responses_expected += other.responses_expected;
  ok += other.ok;
  shed += other.shed;
  deadline += other.deadline;
  errors += other.errors;
  malformed_sent += other.malformed_sent;
  malformed_ok += other.malformed_ok;
  no_response += other.no_response;
  unparseable += other.unparseable;
  reconnects += other.reconnects;
  late_arrivals += other.late_arrivals;
  interrupted = interrupted || other.interrupted;
  latency.merge(other.latency);
}

std::string LoadgenReport::summaryLine() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "sent=%llu expected=%llu ok=%llu shed=%llu deadline=%llu "
      "errors=%llu no_response=%llu unparseable=%llu malformed_ok=%llu "
      "achieved_qps=%.0f p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f",
      static_cast<unsigned long long>(lines_sent),
      static_cast<unsigned long long>(responses_expected),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(no_response),
      static_cast<unsigned long long>(unparseable),
      static_cast<unsigned long long>(malformed_ok), achieved_qps,
      latency.p50(), latency.p95(), latency.p99());
  return buf;
}

std::string LoadgenReport::toJson(const std::string& label,
                                  const LoadgenOptions& options) const {
  char buf[256];
  std::string json = "{\n";
  json += "  \"bench\": \"fleet_loadgen\",\n";
  json += "  \"scenario\": \"" + label + "\",\n";
  json += "  \"arrival\": \"" + std::string(arrivalName(options.arrival)) +
          "\",\n";
  const auto number = [&](const char* key, double value, bool last = false) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6g%s\n", key, value,
                  last ? "" : ",");
    json += buf;
  };
  number("rate_qps", options.rate_qps);
  number("duration_s", options.duration_s);
  number("connections", options.connections);
  number("seed", static_cast<double>(options.seed));
  number("wall_s", wall_s);
  number("offered_qps", offered_qps);
  number("achieved_qps", achieved_qps);
  number("lines_sent", static_cast<double>(lines_sent));
  number("responses_expected", static_cast<double>(responses_expected));
  number("ok", static_cast<double>(ok));
  number("shed", static_cast<double>(shed));
  number("deadline", static_cast<double>(deadline));
  number("errors", static_cast<double>(errors));
  number("no_response", static_cast<double>(no_response));
  number("unparseable", static_cast<double>(unparseable));
  number("malformed_sent", static_cast<double>(malformed_sent));
  number("malformed_ok", static_cast<double>(malformed_ok));
  number("reconnects", static_cast<double>(reconnects));
  number("late_arrivals", static_cast<double>(late_arrivals));
  number("interrupted", interrupted ? 1.0 : 0.0);
  number("p50_ms", latency.p50());
  number("p95_ms", latency.p95());
  number("p99_ms", latency.p99());
  number("max_ms", latency.maxMs(), true);
  json += "}\n";
  return json;
}

LoadgenReport runLoadgen(const LoadgenOptions& options) {
  LoadgenReport report;
  std::mutex merge_mutex;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  const int connections = std::max(1, options.connections);
  threads.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadgenReport partial;
      connectionRoutine(options, c, start, &partial);
      const std::lock_guard<std::mutex> lock(merge_mutex);
      report.mergeFrom(partial);
    });
  }
  for (std::thread& thread : threads) thread.join();
  report.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (report.wall_s > 0.0) {
    report.offered_qps =
        static_cast<double>(report.responses_expected) / report.wall_s;
    report.achieved_qps =
        static_cast<double>(report.responsesReceived()) / report.wall_s;
  }
  return report;
}

}  // namespace tevot::fleet

// Minimal leveled logging to stderr.
//
// The library itself is quiet by default; benches and examples raise
// the level for progress reporting on long sweeps. TEVOT_LOG controls
// the initial level (error|warn|info|debug).
//
// Thread safety: logMessage is line-atomic — the full line (prefix,
// message, newline) is written with a single fwrite under one mutex,
// so concurrent ThreadPool workers and serve threads never shear each
// other's lines.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace tevot::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Redirects log output (default stderr); returns the previous sink.
/// nullptr restores stderr. The caller keeps ownership of the FILE.
std::FILE* setLogSink(std::FILE* sink);

/// Emits one line to the sink if `level` is enabled. Line-atomic
/// across threads.
void logMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine logError() {
  return detail::LogLine(LogLevel::kError);
}
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine logDebug() {
  return detail::LogLine(LogLevel::kDebug);
}

}  // namespace tevot::util

#include "util/bitvec.hpp"

#include <bit>
#include <cstring>

namespace tevot::util {

void unpackBits(std::uint64_t word, int width, std::span<std::uint8_t> out) {
  for (int i = 0; i < width; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((word >> i) & 1ULL);
  }
}

std::vector<std::uint8_t> toBits(std::uint64_t word, int width) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(width));
  unpackBits(word, width, bits);
  return bits;
}

std::uint64_t packBits(std::span<const std::uint8_t> bits) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) word |= (1ULL << i);
  }
  return word;
}

int popcount64(std::uint64_t word) { return std::popcount(word); }

int hammingDistance(std::uint64_t a, std::uint64_t b) {
  return std::popcount(a ^ b);
}

std::uint32_t floatToBits(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float bitsToFloat(std::uint32_t bits) {
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace tevot::util

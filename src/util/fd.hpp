// RAII ownership of a POSIX file descriptor.
//
// The serving layer juggles listener and per-connection sockets across
// threads; UniqueFd makes every descriptor have exactly one owner and
// close exactly once, on every exit path. Move-only, like
// std::unique_ptr for fds.
#pragma once

namespace tevot::util {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Gives up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

}  // namespace tevot::util

// Fixed-size worker pool for chunked parallel-for loops.
//
// The characterization grid (FU x corner x workload) and per-tree
// forest training are embarrassingly parallel with coarse work items,
// so the pool keeps scheduling simple: parallelFor() publishes a
// shared atomic index counter and every participating thread —
// including the caller — claims the next unclaimed index until the
// range is drained (a coarse form of work stealing that balances
// uneven item costs). Results are written by index, so output order
// is deterministic and independent of the thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tevot::util {

/// Thrown by parallelFor when MORE THAN ONE body failed: carries every
/// captured exception (in claim order of the failing indices as the
/// threads recorded them) and concatenates their messages in what().
/// A single failing body rethrows its original exception unchanged.
class ParallelForError : public std::runtime_error {
 public:
  ParallelForError(const std::string& what,
                   std::vector<std::exception_ptr> exceptions);

  const std::vector<std::exception_ptr>& exceptions() const {
    return exceptions_;
  }

 private:
  std::vector<std::exception_ptr> exceptions_;
};

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// 0 selects hardwareThreads(). A pool of 1 spawns no workers and
  /// runs every loop inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers plus the calling thread).
  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Invokes body(i) exactly once for every i in [0, count) across the
  /// pool and the calling thread, blocking until all calls complete.
  /// On failure the loop still drains: indices already claimed when a
  /// body throws run to completion (their exceptions are captured
  /// too); only unclaimed indices are skipped. After the drain, a
  /// single captured exception is rethrown unchanged on the caller,
  /// and multiple captured exceptions are surfaced together as one
  /// ParallelForError.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardwareThreads();

 private:
  void workerLoop();
  /// Pops and runs one queued task if any is pending; returns whether
  /// a task ran. Lets a thread waiting on one loop help drain others.
  bool runOneTask();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace tevot::util

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace tevot::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which
  // is the one fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  if (bound == 0) return next();
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

double Rng::nextGaussian() {
  double u1 = nextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = nextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::nextBool(double p) { return nextDouble() < p; }

Rng Rng::fork() {
  std::uint64_t child_seed = next();
  return Rng(splitmix64(child_seed));
}

}  // namespace tevot::util

#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/env.hpp"

namespace tevot::util {
namespace {

LogLevel initialLevel() {
  const std::string raw = envString("TEVOT_LOG", "warn");
  if (raw == "error") return LogLevel::kError;
  if (raw == "info") return LogLevel::kInfo;
  if (raw == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& levelStorage() {
  static std::atomic<int> level{static_cast<int>(initialLevel())};
  return level;
}

/// Guards the sink pointer and every write to it: one fwrite per line
/// under the lock keeps concurrent lines whole.
std::mutex& sinkMutex() {
  static std::mutex mutex;
  return mutex;
}

std::FILE*& sinkStorage() {
  static std::FILE* sink = nullptr;  // nullptr = stderr
  return sink;
}

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel logLevel() { return static_cast<LogLevel>(levelStorage().load()); }

void setLogLevel(LogLevel level) {
  levelStorage().store(static_cast<int>(level));
}

std::FILE* setLogSink(std::FILE* sink) {
  const std::lock_guard<std::mutex> lock(sinkMutex());
  std::FILE*& storage = sinkStorage();
  std::FILE* previous = storage;
  storage = sink;
  return previous;
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > levelStorage().load()) return;
  std::string line = "[tevot ";
  line += levelTag(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(sinkMutex());
  std::FILE* sink = sinkStorage() != nullptr ? sinkStorage() : stderr;
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace tevot::util

#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/env.hpp"

namespace tevot::util {
namespace {

LogLevel initialLevel() {
  const std::string raw = envString("TEVOT_LOG", "warn");
  if (raw == "error") return LogLevel::kError;
  if (raw == "info") return LogLevel::kInfo;
  if (raw == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& levelStorage() {
  static std::atomic<int> level{static_cast<int>(initialLevel())};
  return level;
}

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel logLevel() { return static_cast<LogLevel>(levelStorage().load()); }

void setLogLevel(LogLevel level) {
  levelStorage().store(static_cast<int>(level));
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > levelStorage().load()) return;
  std::fprintf(stderr, "[tevot %s] %s\n", levelTag(level), message.c_str());
}

}  // namespace tevot::util

// Deterministic, seed-driven fault injection.
//
// Every failure path of the sweep engine (induced job exceptions,
// injected slowness, checkpoint open/write failures) is guarded by a
// named fault point compiled into the library. A FaultInjector armed
// with a FaultPlan decides per (point, key) site — purely from the
// plan seed, never from wall clock or thread timing — whether that
// site is faulty, so a failing run reproduces exactly from its
// TEVOT_FAULTS spec. Sites fail their first `fail_attempts` attempts
// and then succeed, which models transient faults; raising
// fail_attempts past a sweep's retry budget makes the fault
// effectively permanent.
//
// Fault points currently wired in:
//   job.exception  SweepRunner: throw before running a job attempt
//   job.slow       SweepRunner: sleep slow_ms before running a job
//   io.open        trace_io / TevotModel::save: fail opening a
//                  checkpoint or model file
//   io.write       trace_io / TevotModel::save: fail writing/renaming
//                  a checkpoint or model file
//   serve.accept   Server: drop a just-accepted connection
//   serve.parse    Server: fail one request line with FAULT_INJECTED
//   serve.predict  Server: throw inside the model-backend call
//   serve.slow     Server: sleep slow_ms inside the backend call
//   serve.reload   ModelRegistry: fail a model hot-reload attempt
//
// The process-wide injector (FaultInjector::global()) arms itself once
// from the TEVOT_FAULTS environment spec, e.g.
//   TEVOT_FAULTS="points=job.exception|io.write;rate=0.3;seed=7"
// Spec keys: points (|-separated), rate [0,1], seed, attempts
// (fail_attempts), slow-ms. Pairs separated by ';' or ','.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tevot::util {

struct FaultPlan {
  std::uint64_t seed = 1;
  double rate = 0.0;                ///< probability a site is faulty
  std::vector<std::string> points;  ///< armed fault points
  int fail_attempts = 1;            ///< faulty sites fail this many times
  double slow_ms = 25.0;            ///< injected latency of *.slow points

  bool enabled() const { return rate > 0.0 && !points.empty(); }
  /// Round-trippable spec string ("points=a|b;rate=0.3;seed=7;...").
  std::string spec() const;
};

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Installs `plan` and resets all attempt counters.
  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const;
  FaultPlan plan() const;

  /// Whether `point` is in the armed plan's point list.
  bool pointArmed(std::string_view point) const;

  /// Deterministic site selection: depends only on (seed, point, key),
  /// never on call order or thread. False when the injector is
  /// disarmed or the point is not in the plan.
  bool siteIsFaulty(std::string_view point, std::string_view key) const;

  /// Records one attempt at the site and reports whether this attempt
  /// must fail (the first `fail_attempts` attempts of a faulty site).
  bool shouldFail(std::string_view point, std::string_view key);

  /// shouldFail + throw StatusError(kFaultInjected) naming the site.
  void maybeThrow(std::string_view point, std::string_view key);

  /// For slow points: shouldFail + sleep plan.slow_ms. Returns whether
  /// a delay was injected.
  bool maybeDelay(std::string_view point, std::string_view key);

  /// Attempts recorded so far at a site (for tests and reports).
  int attemptCount(std::string_view point, std::string_view key) const;

  /// Forgets all attempt counts, keeping the plan (a "new run").
  void resetCounters();

  /// Parses a TEVOT_FAULTS-style spec. Throws std::invalid_argument
  /// on unknown keys or malformed values.
  static FaultPlan planFromSpec(const std::string& spec);

  /// Process-wide injector, armed once from the TEVOT_FAULTS
  /// environment variable (disarmed when unset or empty).
  static FaultInjector& global();

 private:
  mutable std::mutex mutex_;
  bool armed_ = false;
  FaultPlan plan_;
  std::map<std::string, int, std::less<>> attempts_;
};

}  // namespace tevot::util

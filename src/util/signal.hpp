// Async-signal-safe signal-to-flag plumbing.
//
// Long-running commands (tevot_serve, tevot_cli sweep) must react to
// SIGTERM/SIGINT/SIGHUP cooperatively: the handler may only set a
// flag, and the main loop polls it. SignalFlag installs one handler
// per signal that sets a process-wide sig_atomic_t slot, and restores
// the previous disposition on destruction, so tests and nested scopes
// compose. Handlers are installed with SA_RESTART so slow syscalls
// (file writes mid-checkpoint) are not broken by the signal; polling
// loops built on poll()/sleep must handle EINTR themselves.
#pragma once

#include <csignal>
#include <initializer_list>
#include <vector>

namespace tevot::util {

class SignalFlag {
 public:
  /// Installs a flag-setting handler for each signal in `signums`.
  /// Throws std::invalid_argument for unsupported signal numbers and
  /// StatusError when sigaction fails.
  explicit SignalFlag(std::initializer_list<int> signums);
  ~SignalFlag();

  SignalFlag(const SignalFlag&) = delete;
  SignalFlag& operator=(const SignalFlag&) = delete;

  /// Whether any watched signal arrived since construction/consume().
  bool raised() const;
  /// The most recent watched signal observed, or 0.
  int lastSignal() const;
  /// Test-and-clear: true when a signal had arrived.
  bool consume();

  /// For tests: behaves as if `signum` (which must be watched) was
  /// delivered.
  void simulate(int signum);

 private:
  std::vector<int> signums_;
  std::vector<struct sigaction> previous_;
};

/// Ignores SIGPIPE process-wide (idempotent). Socket writers use
/// MSG_NOSIGNAL too; this covers stray writes to closed pipes so a
/// disconnecting client can never kill the process.
void ignoreSigpipe();

}  // namespace tevot::util

#include "util/fd.hpp"

#include <cerrno>
#include <unistd.h>

namespace tevot::util {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0 && fd_ != fd) {
    // EINTR on close is unrecoverable by retry on Linux (the fd is
    // already gone); ignore it like everyone else.
    ::close(fd_);
  }
  fd_ = fd;
}

}  // namespace tevot::util

// Environment-variable configuration knobs.
//
// Benchmarks default to reduced scales so the whole suite finishes in
// minutes; setting TEVOT_FULL=1 restores paper-scale sweeps. These
// helpers centralize the parsing so every binary interprets the knobs
// identically.
#pragma once

#include <string>

namespace tevot::util {

/// Returns the value of environment variable `name`, or `fallback` if
/// unset or empty.
std::string envString(const char* name, const std::string& fallback);

/// Parses an integer environment variable; returns `fallback` on
/// absence or parse failure.
long envInt(const char* name, long fallback);

/// Parses a floating-point environment variable.
double envDouble(const char* name, double fallback);

/// True when the variable is set to 1/true/yes/on (case-insensitive).
bool envFlag(const char* name, bool fallback = false);

/// Convenience: the global "run at paper scale" switch (TEVOT_FULL).
bool fullScale();

}  // namespace tevot::util

#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tevot::util {

std::string envString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return raw;
}

long envInt(const char* name, long fallback) {
  const std::string raw = envString(name, "");
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || (end != nullptr && *end != '\0')) return fallback;
  return value;
}

double envDouble(const char* name, double fallback) {
  const std::string raw = envString(name, "");
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || (end != nullptr && *end != '\0')) return fallback;
  return value;
}

bool envFlag(const char* name, bool fallback) {
  std::string raw = envString(name, "");
  if (raw.empty()) return fallback;
  std::transform(raw.begin(), raw.end(), raw.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return raw == "1" || raw == "true" || raw == "yes" || raw == "on";
}

bool fullScale() { return envFlag("TEVOT_FULL"); }

}  // namespace tevot::util

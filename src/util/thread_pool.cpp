#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

namespace tevot::util {

namespace {

std::string describeException(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& exception) {
    return exception.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace

ParallelForError::ParallelForError(const std::string& what,
                                   std::vector<std::exception_ptr> exceptions)
    : std::runtime_error(what), exceptions_(std::move(exceptions)) {}

std::size_t ThreadPool::hardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardwareThreads();
  if (threads > 1) {
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

bool ThreadPool::runOneTask() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared loop state. Helpers claim indices from `next` until the
  // range is exhausted; `running` counts helper tasks that have not
  // yet finished (including ones still sitting in the queue).
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::size_t limit = 0;
    std::mutex done_mutex;
    std::condition_variable done;
    std::size_t running = 0;
    std::vector<std::exception_ptr> errors;
  };
  auto batch = std::make_shared<Batch>();
  batch->limit = count;

  const auto drain = [&body, batch] {
    for (;;) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch->limit) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(batch->done_mutex);
        batch->errors.push_back(std::current_exception());
        // Poison the counter so no further index is claimed. Indices
        // already claimed by other threads still run to completion
        // (and may append more errors here).
        batch->next.store(batch->limit, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count - 1);
  {
    std::lock_guard lock(mutex_);
    batch->running = helpers;
    for (std::size_t h = 0; h < helpers; ++h) {
      // `drain` is copied into each task; `body` stays alive because
      // parallelFor does not return before every helper finished.
      tasks_.push_back([batch, drain] {
        drain();
        {
          std::lock_guard done_lock(batch->done_mutex);
          --batch->running;
        }
        batch->done.notify_all();
      });
    }
  }
  wake_.notify_all();

  drain();  // the caller participates

  // Wait for the helpers, lending a hand to the task queue so nested
  // or concurrent loops cannot deadlock on a saturated pool.
  for (;;) {
    {
      std::unique_lock done_lock(batch->done_mutex);
      if (batch->running == 0) break;
    }
    if (runOneTask()) continue;
    std::unique_lock done_lock(batch->done_mutex);
    batch->done.wait_for(done_lock, std::chrono::milliseconds(1),
                         [&] { return batch->running == 0; });
    if (batch->running == 0) break;
  }
  // All helpers are done: batch->errors is stable without the lock.
  if (batch->errors.size() == 1) {
    std::rethrow_exception(batch->errors.front());
  }
  if (batch->errors.size() > 1) {
    std::string what = "parallelFor: " +
                       std::to_string(batch->errors.size()) +
                       " bodies threw:";
    for (const std::exception_ptr& error : batch->errors) {
      what += " [" + describeException(error) + "]";
    }
    throw ParallelForError(what, std::move(batch->errors));
  }
}

}  // namespace tevot::util

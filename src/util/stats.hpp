// Streaming statistics used to summarize delay distributions and
// benchmark results without storing full sample vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tevot::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi). Samples outside the range are
/// counted as underflow/overflow instead of being clamped into the
/// boundary bins, so the tail bins stay faithful to the data. Used
/// for delay-distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t binCount(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  /// In-range samples only (the sum of all bin counts).
  std::size_t total() const { return total_; }
  /// Samples below lo / at-or-above hi, excluded from every bin.
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// Every add() ever made, in range or not.
  std::size_t sampleCount() const { return total_ + underflow_ + overflow_; }
  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;

  /// Approximate quantile (q in [0,1]) from bin midpoints, over the
  /// in-range samples.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Streaming latency percentiles (p50/p95/p99) from a fixed set of
/// geometric buckets — 8 buckets per decade from 1 µs to ~10⁴ s — so
/// recording is O(1), memory is constant, and per-thread histograms
/// merge exactly (bucket-wise adds). Quantiles come back as the
/// geometric midpoint of the covering bucket (≤ ~15% relative error),
/// clamped to the exact observed min/max. Not internally synchronized:
/// accumulate per thread and merge, or guard with a caller mutex.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 96;
  /// Lower edge of bucket 0 [ms]; values at or below land in bucket 0.
  static constexpr double kMinMs = 1e-3;

  void add(double ms);
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double minMs() const { return count_ ? min_ : 0.0; }
  double maxMs() const { return count_ ? max_ : 0.0; }

  /// Approximate quantile, q in [0,1]; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::size_t bucketCount(std::size_t bucket) const {
    return counts_.at(bucket);
  }
  /// Geometric bucket edges: bucketLowMs(i) = kMinMs * 10^(i/8).
  static double bucketLowMs(std::size_t bucket);
  static double bucketHighMs(std::size_t bucket);
  /// The bucket a value lands in (clamped to the first/last bucket).
  static std::size_t bucketIndex(double ms);

  /// Reconstructs a histogram from externally serialized state —
  /// (bucket, count) pairs plus the exact observed min/max — so a
  /// histogram shipped over a wire (the serve stats surface) merges
  /// exactly, as if every add() had happened locally. Out-of-range
  /// bucket indices and zero counts are ignored; an empty pair set
  /// yields an empty histogram regardless of min/max.
  static LatencyHistogram fromBuckets(
      const std::vector<std::pair<std::size_t, std::size_t>>& buckets,
      double min_ms, double max_ms);

 private:
  std::array<std::size_t, kBuckets> counts_{};
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tevot::util

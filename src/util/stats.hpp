// Streaming statistics used to summarize delay distributions and
// benchmark results without storing full sample vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tevot::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); samples outside clamp to the
/// first/last bin. Used for delay-distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t binCount(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tevot::util

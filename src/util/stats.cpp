#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tevot::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto bin = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  // Floating-point rounding at the upper edge can land one past the
  // last bin even though x < hi_.
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
  ++total_;
}

double Histogram::binLow(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::binHigh(std::size_t bin) const { return binLow(bin + 1); }

std::size_t LatencyHistogram::bucketIndex(double ms) {
  if (!(ms > kMinMs)) return 0;
  const double decades = std::log10(ms / kMinMs);
  const auto bucket = static_cast<std::size_t>(decades * 8.0);
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

double LatencyHistogram::bucketLowMs(std::size_t bucket) {
  return kMinMs * std::pow(10.0, static_cast<double>(bucket) / 8.0);
}

double LatencyHistogram::bucketHighMs(std::size_t bucket) {
  return bucketLowMs(bucket + 1);
}

void LatencyHistogram::add(double ms) {
  if (std::isnan(ms)) return;
  if (ms < 0.0) ms = 0.0;
  if (count_ == 0) {
    min_ = max_ = ms;
  } else {
    min_ = std::min(min_, ms);
    max_ = std::max(max_, ms);
  }
  ++counts_[bucketIndex(ms)];
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
}

LatencyHistogram LatencyHistogram::fromBuckets(
    const std::vector<std::pair<std::size_t, std::size_t>>& buckets,
    double min_ms, double max_ms) {
  LatencyHistogram histogram;
  for (const auto& [bucket, count] : buckets) {
    if (bucket >= kBuckets || count == 0) continue;
    histogram.counts_[bucket] += count;
    histogram.count_ += count;
  }
  if (histogram.count_ > 0) {
    histogram.min_ = min_ms;
    histogram.max_ = max_ms;
  }
  return histogram;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::size_t>(q * static_cast<double>(count_ - 1));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen > target) {
      const double mid = std::sqrt(bucketLowMs(b) * bucketHighMs(b));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_ - 1));
  std::size_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (seen > target) return 0.5 * (binLow(b) + binHigh(b));
  }
  return 0.5 * (binLow(counts_.size() - 1) + binHigh(counts_.size() - 1));
}

}  // namespace tevot::util

#include "util/status.hpp"

#include <system_error>
#include <utility>

namespace tevot::util {

const char* statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kFaultInjected: return "FAULT_INJECTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::toString() const {
  if (ok()) return "OK";
  std::string text = statusCodeName(code);
  if (!message.empty()) {
    text += ": ";
    text += message;
  }
  return text;
}

Status Status::invalidArgument(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status Status::ioError(std::string message) {
  return {StatusCode::kIoError, std::move(message)};
}
Status Status::parseError(std::string message) {
  return {StatusCode::kParseError, std::move(message)};
}
Status Status::deadlineExceeded(std::string message) {
  return {StatusCode::kDeadlineExceeded, std::move(message)};
}
Status Status::faultInjected(std::string message) {
  return {StatusCode::kFaultInjected, std::move(message)};
}
Status Status::cancelled(std::string message) {
  return {StatusCode::kCancelled, std::move(message)};
}
Status Status::internal(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}

std::string errnoText(int errno_value) {
  return std::generic_category().message(errno_value);
}

Status ioErrorFor(const std::string& op, const std::string& path,
                  int errno_value) {
  return Status::ioError(op + " " + path + ": " + errnoText(errno_value));
}

StatusError::StatusError(Status status)
    : std::runtime_error(status.toString()), status_(std::move(status)) {}

Status statusFromException(std::exception_ptr error) {
  if (!error) return Status::okStatus();
  try {
    std::rethrow_exception(error);
  } catch (const StatusError& status_error) {
    return status_error.status();
  } catch (const std::exception& exception) {
    return Status::internal(exception.what());
  } catch (...) {
    return Status::internal("non-standard exception");
  }
}

}  // namespace tevot::util

#include "util/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"
#include "util/status.hpp"

namespace tevot::util {

namespace {

/// FNV-1a over bytes, then a splitmix64 finalizer — enough mixing to
/// turn (seed, point, key) into an unbiased uniform draw.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hashBytes(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::string siteKey(std::string_view point, std::string_view key) {
  std::string site(point);
  site.push_back('\0');
  site.append(key);
  return site;
}

}  // namespace

std::string FaultPlan::spec() const {
  std::ostringstream os;
  os << "points=";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) os << '|';
    os << points[i];
  }
  os << ";rate=" << rate << ";seed=" << seed
     << ";attempts=" << fail_attempts << ";slow-ms=" << slow_ms;
  return os.str();
}

void FaultInjector::arm(const FaultPlan& plan) {
  std::lock_guard lock(mutex_);
  plan_ = plan;
  armed_ = plan.enabled();
  attempts_.clear();
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  armed_ = false;
  plan_ = FaultPlan{};
  attempts_.clear();
}

bool FaultInjector::armed() const {
  std::lock_guard lock(mutex_);
  return armed_;
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard lock(mutex_);
  return plan_;
}

bool FaultInjector::pointArmed(std::string_view point) const {
  std::lock_guard lock(mutex_);
  if (!armed_) return false;
  return std::find(plan_.points.begin(), plan_.points.end(), point) !=
         plan_.points.end();
}

bool FaultInjector::siteIsFaulty(std::string_view point,
                                 std::string_view key) const {
  std::lock_guard lock(mutex_);
  if (!armed_) return false;
  if (std::find(plan_.points.begin(), plan_.points.end(), point) ==
      plan_.points.end()) {
    return false;
  }
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = hashBytes(h, point);
  h = hashBytes(h, "\0");
  h = hashBytes(h, key);
  const std::uint64_t draw = mix64(h ^ mix64(plan_.seed));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  return u < plan_.rate;
}

bool FaultInjector::shouldFail(std::string_view point, std::string_view key) {
  if (!siteIsFaulty(point, key)) return false;
  std::lock_guard lock(mutex_);
  const int attempt = ++attempts_[siteKey(point, key)];
  return attempt <= plan_.fail_attempts;
}

void FaultInjector::maybeThrow(std::string_view point, std::string_view key) {
  if (shouldFail(point, key)) {
    throw StatusError(Status::faultInjected(
        "injected fault at " + std::string(point) + " for " +
        std::string(key)));
  }
}

bool FaultInjector::maybeDelay(std::string_view point, std::string_view key) {
  if (!shouldFail(point, key)) return false;
  const double ms = plan().slow_ms;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
  return true;
}

int FaultInjector::attemptCount(std::string_view point,
                                std::string_view key) const {
  std::lock_guard lock(mutex_);
  const auto it = attempts_.find(siteKey(point, key));
  return it == attempts_.end() ? 0 : it->second;
}

void FaultInjector::resetCounters() {
  std::lock_guard lock(mutex_);
  attempts_.clear();
}

FaultPlan FaultInjector::planFromSpec(const std::string& spec) {
  FaultPlan plan;
  std::string pair;
  // Pairs are ';'- or ','-separated; normalize ',' first.
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ',', ';');
  std::istringstream stream(normalized);
  while (std::getline(stream, pair, ';')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value in '" +
                                  pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    if (key == "points") {
      std::istringstream points(value);
      std::string point;
      while (std::getline(points, point, '|')) {
        if (!point.empty()) plan.points.push_back(point);
      }
      if (plan.points.empty()) {
        throw std::invalid_argument("fault spec: empty points list");
      }
    } else if (key == "rate") {
      plan.rate = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || plan.rate < 0.0 ||
          plan.rate > 1.0) {
        throw std::invalid_argument("fault spec: bad rate '" + value + "'");
      }
    } else if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') {
        throw std::invalid_argument("fault spec: bad seed '" + value + "'");
      }
    } else if (key == "attempts") {
      plan.fail_attempts =
          static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0' || plan.fail_attempts < 1) {
        throw std::invalid_argument("fault spec: bad attempts '" + value +
                                    "'");
      }
    } else if (key == "slow-ms" || key == "slow_ms") {
      plan.slow_ms = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || plan.slow_ms < 0.0) {
        throw std::invalid_argument("fault spec: bad slow-ms '" + value +
                                    "'");
      }
    } else {
      throw std::invalid_argument("fault spec: unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    const std::string spec = envString("TEVOT_FAULTS", "");
    if (!spec.empty()) instance->arm(planFromSpec(spec));
    return instance;
  }();
  return *injector;
}

}  // namespace tevot::util

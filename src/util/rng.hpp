// Deterministic pseudo-random number generation for workload synthesis,
// ML bootstrapping and error injection.
//
// All stochastic components of the library take an explicit Rng (or a
// seed) so that every experiment in bench/ is exactly reproducible.
// The generator is xoshiro256** (Blackman & Vigna), which is fast,
// has a 2^256-1 period, and passes BigCrush; <random> engines are
// deliberately avoided because their streams differ across standard
// library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace tevot::util {

/// xoshiro256** pseudo-random generator with splitmix64 seeding.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can
/// also be handed to <algorithm> facilities (e.g. std::shuffle).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from a single 64-bit seed via
  /// splitmix64, as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  std::uint64_t next();

  result_type operator()() { return next(); }

  /// Uniform in [0, bound). bound == 0 is treated as the full range.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (no state caching; two draws).
  double nextGaussian();

  /// Bernoulli draw with probability p of returning true.
  bool nextBool(double p = 0.5);

  /// Uniform 32-bit value (upper 32 bits of a 64-bit draw).
  std::uint32_t nextU32() { return static_cast<std::uint32_t>(next() >> 32); }

  /// Forks an independent generator; the child stream is decorrelated
  /// from the parent by an extra splitmix64 scramble.
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace tevot::util

#include "util/signal.hpp"

#include <cstring>
#include <stdexcept>

#include "util/status.hpp"

namespace tevot::util {
namespace {

// One slot per signal number the process can watch. sig_atomic_t
// writes are the only thing the handler does, which keeps it
// async-signal-safe.
constexpr int kMaxSignal = 64;
volatile std::sig_atomic_t g_signal_flags[kMaxSignal + 1];
volatile std::sig_atomic_t g_last_signal = 0;

extern "C" void signalFlagHandler(int signum) {
  if (signum >= 0 && signum <= kMaxSignal) {
    g_signal_flags[signum] = 1;
    g_last_signal = signum;
  }
}

}  // namespace

SignalFlag::SignalFlag(std::initializer_list<int> signums) {
  for (const int signum : signums) {
    if (signum <= 0 || signum > kMaxSignal) {
      throw std::invalid_argument("SignalFlag: unsupported signal " +
                                  std::to_string(signum));
    }
    struct sigaction action {};
    action.sa_handler = signalFlagHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    struct sigaction previous {};
    g_signal_flags[signum] = 0;
    if (sigaction(signum, &action, &previous) != 0) {
      throw StatusError(Status::internal(
          "SignalFlag: sigaction(" + std::to_string(signum) +
          "): " + errnoText(errno)));
    }
    signums_.push_back(signum);
    previous_.push_back(previous);
  }
}

SignalFlag::~SignalFlag() {
  for (std::size_t i = signums_.size(); i-- > 0;) {
    sigaction(signums_[i], &previous_[i], nullptr);
    g_signal_flags[signums_[i]] = 0;
  }
}

bool SignalFlag::raised() const {
  for (const int signum : signums_) {
    if (g_signal_flags[signum] != 0) return true;
  }
  return false;
}

int SignalFlag::lastSignal() const {
  const int last = g_last_signal;
  for (const int signum : signums_) {
    if (signum == last && g_signal_flags[signum] != 0) return last;
  }
  // Fall back to any raised watched signal.
  for (const int signum : signums_) {
    if (g_signal_flags[signum] != 0) return signum;
  }
  return 0;
}

bool SignalFlag::consume() {
  bool any = false;
  for (const int signum : signums_) {
    if (g_signal_flags[signum] != 0) {
      g_signal_flags[signum] = 0;
      any = true;
    }
  }
  return any;
}

void SignalFlag::simulate(int signum) {
  for (const int watched : signums_) {
    if (watched == signum) {
      signalFlagHandler(signum);
      return;
    }
  }
  throw std::invalid_argument("SignalFlag::simulate: signal " +
                              std::to_string(signum) + " not watched");
}

void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

}  // namespace tevot::util

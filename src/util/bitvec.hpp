// Helpers for moving between machine words and bit-level circuit I/O.
//
// The netlist simulator and the ML feature encoder both view operands
// as ordered bit vectors (LSB first, matching net index order used by
// the circuit generators).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tevot::util {

/// Expands the low `width` bits of `word` into `out[0..width)`,
/// LSB first.
void unpackBits(std::uint64_t word, int width, std::span<std::uint8_t> out);

/// Returns the low `width` bits of `word` as a vector, LSB first.
std::vector<std::uint8_t> toBits(std::uint64_t word, int width);

/// Packs `bits[0..width)` (LSB first) into a word.
std::uint64_t packBits(std::span<const std::uint8_t> bits);

/// Population count of a word (number of set bits).
int popcount64(std::uint64_t word);

/// Hamming distance between two words.
int hammingDistance(std::uint64_t a, std::uint64_t b);

/// Reinterprets a float as its IEEE-754 bit pattern and back.
std::uint32_t floatToBits(float value);
float bitsToFloat(std::uint32_t bits);

}  // namespace tevot::util

// Structured error taxonomy for the fault-tolerant sweep machinery.
//
// A Status pairs a machine-readable code with a human-readable
// message, so a sweep's per-job outcome can be classified (retriable
// I/O hiccup vs. deadline overrun vs. hard job failure) without
// string-matching exception texts. StatusError is the exception
// carrier: library code that must throw (parsers, checkpoint I/O,
// fault injection) throws StatusError, and statusFromException()
// recovers the taxonomy at the recording site — any foreign
// std::exception degrades gracefully to kInternal.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace tevot::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< caller handed in something malformed
  kIoError,            ///< file open/read/write/rename failure
  kParseError,         ///< malformed input text (SDF/Liberty/VCD/trace)
  kDeadlineExceeded,   ///< per-job wall-clock budget overrun
  kFaultInjected,      ///< deterministic failure from FaultInjector
  kCancelled,          ///< job skipped (fail-fast abort)
  kInternal,           ///< unclassified exception
};

/// Stable upper-case name for reports and logs, e.g. "IO_ERROR".
const char* statusCodeName(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  /// "OK" or "<CODE>: <message>".
  std::string toString() const;

  static Status okStatus() { return {}; }
  static Status invalidArgument(std::string message);
  static Status ioError(std::string message);
  static Status parseError(std::string message);
  static Status deadlineExceeded(std::string message);
  static Status faultInjected(std::string message);
  static Status cancelled(std::string message);
  static Status internal(std::string message);
};

/// The message an errno value maps to ("No such file or directory").
std::string errnoText(int errno_value);

/// I/O status with the offending path and errno text spelled out:
/// "IO_ERROR: <op> <path>: <errno text>".
Status ioErrorFor(const std::string& op, const std::string& path,
                  int errno_value);

/// Exception type carrying a Status. what() is status().toString().
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status);
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Classifies a caught exception: StatusError keeps its taxonomy, any
/// other std::exception becomes kInternal with its what(), anything
/// else kInternal with a placeholder.
Status statusFromException(std::exception_ptr error);

}  // namespace tevot::util

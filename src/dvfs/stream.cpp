#include "dvfs/stream.hpp"

#include <algorithm>

namespace tevot::dvfs {

namespace {

/// Clamped random-walk step over [0, points): uniform in
/// [-max_step, +max_step], reflected into range.
int walkIndex(int index, int points, int max_step, util::Rng& rng) {
  if (points <= 1) return 0;
  const int step = static_cast<int>(
      rng.nextInRange(-max_step, max_step));
  return std::clamp(index + step, 0, points - 1);
}

}  // namespace

WindowedStream WindowedStream::generate(const StreamOptions& options) {
  WindowedStream stream;
  stream.options_ = options;
  util::Rng rng(options.seed);

  stream.workload_ = dta::randomWorkloadFor(options.kind, options.cycles,
                                            rng, "dvfs_stream");

  const std::size_t transitions =
      options.cycles > 1 ? options.cycles - 1 : 0;
  const std::size_t window =
      std::max<std::size_t>(1, options.window);

  const int v_points = std::max(1, options.grid.voltagePoints());
  const int t_points = std::max(1, options.grid.temperaturePoints());
  // Start mid-grid; each window takes one walk step per axis.
  int v_index = v_points / 2;
  int t_index = t_points / 2;

  for (std::size_t first = 1; first <= transitions; first += window) {
    Window w;
    w.first = first;
    w.last = std::min(first + window, transitions + 1);
    w.corner = liberty::Corner{
        options.grid.v_start +
            options.grid.v_step * static_cast<double>(v_index),
        options.grid.t_start +
            options.grid.t_step * static_cast<double>(t_index)};
    stream.windows_.push_back(w);
    v_index = walkIndex(v_index, v_points, options.max_corner_step, rng);
    t_index = walkIndex(t_index, t_points, options.max_corner_step, rng);
  }
  return stream;
}

dta::Workload WindowedStream::windowWorkload(const Window& w) const {
  dta::Workload out;
  out.name = workload_.name + "/w" + std::to_string(w.first);
  out.ops.reserve(w.cycles() + 1);
  out.ops.push_back(workload_.ops[w.first - 1]);
  for (std::size_t t = w.first; t < w.last; ++t) {
    out.ops.push_back(workload_.ops[t]);
  }
  return out;
}

}  // namespace tevot::dvfs

#include "dvfs/run.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "lint/finding.hpp"
#include "tevot/pipeline.hpp"

namespace tevot::dvfs {

namespace {

constexpr double kCornerEps = 1e-9;

}  // namespace

std::size_t RunReport::ranCount() const {
  std::size_t n = 0;
  for (const DvfsReport& r : fus) {
    if (r.status.ok()) ++n;
  }
  return n;
}

std::uint64_t RunReport::totalEscapes() const {
  std::uint64_t n = 0;
  for (const DvfsReport& r : fus) n += r.escapes;
  return n;
}

std::string RunReport::toJson(const std::string& label) const {
  std::ostringstream os;
  os << "{\"bench\":\"dvfs_closed_loop\",\"label\":\""
     << lint::jsonEscape(label) << "\",\"fus\":[";
  for (std::size_t i = 0; i < fus.size(); ++i) {
    os << (i == 0 ? "" : ",") << fus[i].toJson();
  }
  os << "]}";
  return os.str();
}

util::Status validateCertificateForGrid(const verify::SafeTclkCertificate& cert,
                                        const core::OperatingGrid& grid) {
  if (!cert.certified) {
    return util::Status::invalidArgument(
        "certificate is not certified (MV004 found a counterexample); "
        "refusing adaptive mode");
  }
  if (!(cert.tclk_ps > 0.0) || !std::isfinite(cert.tclk_ps)) {
    return util::Status::invalidArgument(
        "certificate tclk_ps must be finite and > 0");
  }
  if (cert.v_lo > grid.v_start + kCornerEps ||
      cert.v_hi < grid.v_end - kCornerEps ||
      cert.t_lo > grid.t_start + kCornerEps ||
      cert.t_hi < grid.t_end - kCornerEps) {
    return util::Status::invalidArgument(
        "certificate operating box does not cover the stream grid; "
        "refusing adaptive mode");
  }
  return util::Status::okStatus();
}

RunReport runDvfs(std::span<const FuSetup> fus, const RunOptions& options,
                  util::ThreadPool& pool) {
  if (options.serve_port <= 0) {
    for (const FuSetup& fu : fus) {
      if (fu.model == nullptr || !fu.model->trained()) {
        throw std::invalid_argument(
            "runDvfs: in-process mode requires a trained model per FU");
      }
    }
  }
  RunReport run;
  run.fus.resize(fus.size());
  pool.parallelFor(fus.size(), [&](std::size_t i) {
    const FuSetup& fu = fus[i];
    const std::string slug(circuits::fuSlug(fu.kind));

    // Fallback clock gate: no usable certificate, no adaptive mode.
    util::Status cert_status = fu.cert_status;
    if (cert_status.ok()) {
      cert_status = validateCertificateForGrid(fu.cert, options.stream.grid);
    }
    if (!cert_status.ok()) {
      DvfsReport refused;
      refused.fu = slug;
      refused.status = cert_status;
      run.fus[i] = std::move(refused);
      return;
    }

    StreamOptions stream_options = options.stream;
    stream_options.kind = fu.kind;
    stream_options.seed = options.stream.seed + i;
    const WindowedStream stream = WindowedStream::generate(stream_options);

    std::unique_ptr<DelayBackend> backend;
    if (options.serve_port > 0) {
      ServeBackend::Options serve_options;
      serve_options.port = options.serve_port;
      serve_options.tclk_hint_ps = fu.cert.tclk_ps;
      serve_options.deadline_ms = options.deadline_ms;
      serve_options.reconnect = options.reconnect;
      backend = std::make_unique<ServeBackend>(slug, serve_options);
    } else {
      backend =
          std::make_unique<InProcessBackend>(*fu.model, slug, options.faults);
    }

    core::FuContext context(fu.kind);
    dta::DtaOptions dta_options;
    dta_options.keep_toggles = false;  // controller needs delays only
    const GroundTruth ground_truth = [&](const Window& w) {
      const dta::Workload workload = stream.windowWorkload(w);
      const dta::DtaTrace trace =
          context.characterize(w.corner, workload, dta_options);
      std::vector<double> delays;
      delays.reserve(trace.samples.size());
      for (const dta::DtaSample& s : trace.samples) {
        delays.push_back(s.delay_ps);
      }
      return delays;
    };

    run.fus[i] = runController(stream, *backend, fu.cert,
                               options.controller, ground_truth);
  });
  return run;
}

}  // namespace tevot::dvfs

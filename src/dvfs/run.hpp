// Multi-FU driver for the closed-loop DVFS scenario: builds the
// per-FU stream, backend and ground-truth simulator, refuses adaptive
// mode when a certificate is missing or unusable (a typed report
// entry, never a crash), and runs the controllers across a thread
// pool. Shared by tools/tevot_dvfs, bench/bench_dvfs_closed_loop and
// check::checkDvfsSafety.
//
// Determinism: each FU's run depends only on its own stream seed and
// its backend's answers. With the in-process backend (or one server
// per FU) reports and traces are byte-identical at any pool size.
// With a *shared* server (RunOptions::serve_port) the server-side
// fault points key on global request/connection ids, so trace-exact
// reproducibility across runs additionally requires a single-threaded
// pool — document --jobs 1 wherever that mode is exposed.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dvfs/controller.hpp"
#include "dvfs/stream.hpp"
#include "serve/client.hpp"
#include "util/thread_pool.hpp"
#include "verify/model_rules.hpp"

namespace tevot::dvfs {

/// One FU to drive through the closed loop.
struct FuSetup {
  circuits::FuKind kind = circuits::FuKind::kIntAdd;
  /// In-process backend model; may be null in serve mode (the server
  /// owns the models). Must outlive runDvfs.
  const core::TevotModel* model = nullptr;
  /// Safe-tclk certificate for the fallback clock. `cert_status`
  /// carries the loader's verdict: any non-ok status (missing file,
  /// parse error, uncertified) makes runDvfs refuse adaptive mode for
  /// this FU and report why.
  verify::SafeTclkCertificate cert;
  util::Status cert_status = util::Status::okStatus();
};

struct RunOptions {
  /// Stream shape; `kind` is overridden per FU and `seed` is offset
  /// by the FU's index so streams are decorrelated but reproducible.
  StreamOptions stream;
  ControllerOptions controller;
  /// > 0 switches every FU to a ServeBackend against this (shared)
  /// port; 0 runs in-process and requires FuSetup::model.
  int serve_port = 0;
  double deadline_ms = 0.0;
  serve::ReconnectPolicy reconnect;
  /// In-process fault injector for the dvfs.predict point; nullptr
  /// uses the process-global (TEVOT_FAULTS) injector.
  util::FaultInjector* faults = nullptr;
};

struct RunReport {
  std::vector<DvfsReport> fus;  ///< input order

  /// FUs that actually ran adaptively (status ok).
  std::size_t ranCount() const;
  std::uint64_t totalEscapes() const;

  /// {"bench":"dvfs_closed_loop","label":...,"fus":[...]} — the
  /// payload tevot_dvfs --json prints and the bench writes to
  /// BENCH_dvfs_closed_loop.json. No trailing newline.
  std::string toJson(const std::string& label) const;
};

/// Checks `cert` (already loaded) is usable as the fallback clock for
/// a stream over `grid`: certified verdict, positive tclk, and an
/// operating box covering the grid the corner walk draws from.
util::Status validateCertificateForGrid(const verify::SafeTclkCertificate& cert,
                                        const core::OperatingGrid& grid);

/// Runs the closed loop for every FU. Throws std::invalid_argument on
/// a setup error that is a caller bug (in-process mode without a
/// model); per-FU degradations — bad certificate, dead server — land
/// in that FU's report status/counters instead.
RunReport runDvfs(std::span<const FuSetup> fus, const RunOptions& options,
                  util::ThreadPool& pool);

}  // namespace tevot::dvfs

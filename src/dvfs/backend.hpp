// Delay-prediction backends for the DVFS controller.
//
// The controller asks one question per window — "predicted dynamic
// delay for each transition, at this corner" — through this interface,
// so the same control loop runs against an in-process TevotModel or a
// live tevot_serve endpoint. The answer is *typed*: a backend never
// throws into the control loop and never returns partial numbers; a
// degraded window comes back as exactly one WindowOutcome the
// controller maps onto its fallback ladder (DESIGN.md §5i). That
// closed taxonomy is what makes the fallback accounting exact:
// degraded responses == fallback windows, by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dvfs/stream.hpp"
#include "serve/client.hpp"
#include "tevot/model.hpp"
#include "util/fault_injection.hpp"

namespace tevot::dvfs {

/// Per-window backend verdict. kOk carries delays; everything else is
/// a degradation the controller resolves to the certified safe clock.
enum class WindowOutcome {
  kOk,          ///< delays_ps filled, one per transition
  kShed,        ///< server shed the window (queue full / draining)
  kDeadline,    ///< per-request deadline exceeded
  kError,       ///< typed ERROR response, injected fault, or backend throw
  kDisconnect,  ///< connection lost and the reconnect budget exhausted
};

/// "ok" / "shed" / "deadline" / "error" / "disconnect".
const char* windowOutcomeName(WindowOutcome outcome);

struct WindowPrediction {
  WindowOutcome outcome = WindowOutcome::kOk;
  std::vector<double> delays_ps;  ///< valid only when outcome == kOk
  std::string detail;             ///< degradation detail for the report
};

class DelayBackend {
 public:
  virtual ~DelayBackend() = default;

  /// Predicted delays for every transition of `w`, or one typed
  /// degradation. Must not throw.
  virtual WindowPrediction predictWindow(const WindowedStream& stream,
                                         const Window& w) = 0;

  virtual const char* name() const = 0;
};

/// Library-path backend over TevotModel::predictDelayBatch. The
/// `dvfs.predict` fault point (keyed "<fu>:<first transition>", so
/// injection is deterministic at any thread count) turns a window
/// into kError for fallback testing without a server in the loop.
class InProcessBackend : public DelayBackend {
 public:
  /// `model` must outlive the backend. `faults` nullptr uses the
  /// process-global injector (TEVOT_FAULTS).
  InProcessBackend(const core::TevotModel& model, std::string fu_slug,
                   util::FaultInjector* faults = nullptr);

  WindowPrediction predictWindow(const WindowedStream& stream,
                                 const Window& w) override;
  const char* name() const override { return "in-process"; }

 private:
  const core::TevotModel& model_;
  std::string fu_slug_;
  util::FaultInjector* faults_;
};

/// Live-serving backend: predictN batches over the newline protocol,
/// one connection per backend (per FU). Windows wider than the
/// protocol's batch cap are split across several predictN lines. A
/// dropped connection is retried through LineClient::reconnect() and
/// the whole window is resent (requests are idempotent); only an
/// exhausted budget degrades the window to kDisconnect.
class ServeBackend : public DelayBackend {
 public:
  struct Options {
    int port = 0;
    /// Clock the wire protocol classifies err= against; the
    /// controller only consumes the delay, so any positive value
    /// works — the certified clock is the natural choice.
    double tclk_hint_ps = 1000.0;
    double deadline_ms = 0.0;  ///< 0 = server default
    serve::ReconnectPolicy reconnect;
    /// Full-window resends after a mid-window disconnect.
    int resend_budget = 2;
  };

  ServeBackend(std::string fu_slug, Options options);

  WindowPrediction predictWindow(const WindowedStream& stream,
                                 const Window& w) override;
  const char* name() const override { return "serve"; }

 private:
  /// One attempt at the full window. kDisconnect means "torn, resend".
  WindowPrediction attemptWindow(const WindowedStream& stream,
                                 const Window& w);

  std::string fu_slug_;
  Options options_;
  serve::LineClient client_;
  bool ever_connected_ = false;
};

}  // namespace tevot::dvfs

#include "dvfs/backend.hpp"

#include <algorithm>
#include <exception>

#include "serve/protocol.hpp"

namespace tevot::dvfs {

const char* windowOutcomeName(WindowOutcome outcome) {
  switch (outcome) {
    case WindowOutcome::kOk: return "ok";
    case WindowOutcome::kShed: return "shed";
    case WindowOutcome::kDeadline: return "deadline";
    case WindowOutcome::kError: return "error";
    case WindowOutcome::kDisconnect: return "disconnect";
  }
  return "unknown";
}

InProcessBackend::InProcessBackend(const core::TevotModel& model,
                                   std::string fu_slug,
                                   util::FaultInjector* faults)
    : model_(model),
      fu_slug_(std::move(fu_slug)),
      faults_(faults ? faults : &util::FaultInjector::global()) {}

WindowPrediction InProcessBackend::predictWindow(
    const WindowedStream& stream, const Window& w) {
  WindowPrediction out;
  try {
    faults_->maybeThrow("dvfs.predict",
                        fu_slug_ + ":" + std::to_string(w.first));
    std::vector<core::DelayQuery> queries;
    queries.reserve(w.cycles());
    for (std::size_t t = w.first; t < w.last; ++t) {
      const dta::OperandPair cur = stream.operandAt(t);
      const dta::OperandPair prev = stream.previousOperandAt(t);
      queries.push_back(
          core::DelayQuery{cur.a, cur.b, prev.a, prev.b, w.corner});
    }
    out.delays_ps.resize(queries.size());
    model_.predictDelayBatch(queries, out.delays_ps);
  } catch (const std::exception& e) {
    out = WindowPrediction{};
    out.outcome = WindowOutcome::kError;
    out.detail = e.what();
  }
  return out;
}

ServeBackend::ServeBackend(std::string fu_slug, Options options)
    : fu_slug_(std::move(fu_slug)), options_(std::move(options)) {}

WindowPrediction ServeBackend::attemptWindow(const WindowedStream& stream,
                                             const Window& w) {
  WindowPrediction out;
  out.delays_ps.reserve(w.cycles());
  // The first degraded line decides the window. The client cannot
  // know how many more lines follow it — a batch-level outcome from
  // the worker is replicated per tuple, but a parse-path failure
  // (injected serve.parse fault, malformed/oversized line) answers
  // the whole predictN with ONE line — so blocking for the remainder
  // could deadlock. Instead the connection is closed, which safely
  // discards any replicated tail, and the next window redials.
  for (std::size_t first = w.first; first < w.last;
       first += serve::kMaxBatchTuples) {
    const std::size_t last =
        std::min(first + serve::kMaxBatchTuples, w.last);
    std::vector<serve::BatchOperand> tuples;
    tuples.reserve(last - first);
    for (std::size_t t = first; t < last; ++t) {
      const dta::OperandPair cur = stream.operandAt(t);
      const dta::OperandPair prev = stream.previousOperandAt(t);
      tuples.push_back(serve::BatchOperand{cur.a, cur.b, prev.a, prev.b});
    }
    const std::string line = serve::formatBatchRequest(
        fu_slug_, w.corner.voltage, w.corner.temperature,
        options_.tclk_hint_ps, tuples, options_.deadline_ms);
    if (!client_.sendLine(line)) {
      out = WindowPrediction{};
      out.outcome = WindowOutcome::kDisconnect;
      out.detail = "send failed";
      return out;
    }
    for (std::size_t t = first; t < last; ++t) {
      const std::optional<std::string> reply = client_.readLine();
      if (!reply) {
        out = WindowPrediction{};
        out.outcome = WindowOutcome::kDisconnect;
        out.detail = "connection lost mid-batch";
        return out;
      }
      serve::Response response;
      const bool parsed = serve::parseResponse(*reply, &response);
      if (parsed && response.status == serve::ResponseStatus::kOk) {
        out.delays_ps.push_back(response.delay_ps);
        continue;
      }
      out.delays_ps.clear();
      if (!parsed) {
        out.outcome = WindowOutcome::kError;
        out.detail = "unparseable response: " + *reply;
      } else {
        switch (response.status) {
          case serve::ResponseStatus::kShed:
            out.outcome = WindowOutcome::kShed;
            out.detail = response.detail;
            break;
          case serve::ResponseStatus::kDeadline:
            out.outcome = WindowOutcome::kDeadline;
            out.detail = response.detail;
            break;
          default:
            out.outcome = WindowOutcome::kError;
            out.detail = std::string(serve::errorCodeName(response.code)) +
                         " " + response.detail;
            break;
        }
      }
      client_.close();  // unknown tail length; drop it with the socket
      return out;
    }
  }
  return out;
}

WindowPrediction ServeBackend::predictWindow(const WindowedStream& stream,
                                             const Window& w) {
  if (!ever_connected_) {
    const util::Status status = client_.connectTo(options_.port);
    if (!status.ok()) {
      WindowPrediction out;
      out.outcome = WindowOutcome::kDisconnect;
      out.detail = status.message;
      return out;
    }
    ever_connected_ = true;
  }
  WindowPrediction out;
  for (int attempt = 0; attempt <= options_.resend_budget; ++attempt) {
    if (attempt > 0 || !client_.connected()) {
      const util::Status status = client_.reconnect(options_.reconnect);
      if (!status.ok()) {
        out = WindowPrediction{};
        out.outcome = WindowOutcome::kDisconnect;
        out.detail = status.message;
        return out;
      }
    }
    out = attemptWindow(stream, w);
    if (out.outcome != WindowOutcome::kDisconnect) return out;
  }
  out.detail += " (resend budget exhausted)";
  return out;
}

}  // namespace tevot::dvfs

// Seeded synthetic operand streams for the closed-loop DVFS scenario.
//
// The Fouman Ajirlou line of work (PAPERS.md) drives dynamic frequency
// scaling from exactly TEVoT's model class: per input *window*, pick
// the fastest clock the predicted delays allow instead of the
// worst-case clock. A WindowedStream is the workload side of that
// loop: an ordered operand stream for one FU (the same distributions
// DTA trains from) chopped into fixed-size decision windows, each
// window annotated with the (V, T) operating corner it executes at.
//
// The corner follows a seeded random walk over the paper's Table I
// grid — "dynamic voltage and temperature variations" from the title,
// quantized to grid steps so per-corner delay annotation stays
// memoizable (core::FuContext::delaysAt) and every run is exactly
// reproducible from its seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "circuits/fu.hpp"
#include "dta/workload.hpp"
#include "liberty/corner.hpp"
#include "tevot/operating_grid.hpp"
#include "util/rng.hpp"

namespace tevot::dvfs {

struct StreamOptions {
  circuits::FuKind kind = circuits::FuKind::kIntAdd;
  /// Total operands drawn; the first only initializes circuit state,
  /// so the stream carries cycles - 1 clocked transitions.
  std::size_t cycles = 2048;
  /// Transitions per clock decision. A window larger than the stream
  /// degenerates to one window holding every transition.
  std::size_t window = 32;
  std::uint64_t seed = 1;
  /// Grid the corner walk is quantized to.
  core::OperatingGrid grid;
  /// Largest per-window move along each grid axis, in grid steps.
  int max_corner_step = 2;
};

/// One decision window: `ops[first..last)` of the stream run at
/// `corner`, with ops[first - 1] as the state-setting previous
/// operand (transition t consumes ops[t-1] -> ops[t]).
struct Window {
  std::size_t first = 0;  ///< first transition index (>= 1)
  std::size_t last = 0;   ///< one past the final transition index
  liberty::Corner corner;

  std::size_t cycles() const { return last - first; }
};

class WindowedStream {
 public:
  /// Draws the operand stream and the corner walk. Every random
  /// choice derives from options.seed.
  static WindowedStream generate(const StreamOptions& options);

  const StreamOptions& options() const { return options_; }
  const dta::Workload& workload() const { return workload_; }
  std::span<const Window> windows() const { return windows_; }

  /// Transition t as a model query: operands (a, b) after the edge,
  /// (prev_a, prev_b) before it. Valid for t in [1, cycles).
  dta::OperandPair operandAt(std::size_t t) const {
    return workload_.ops[t];
  }
  dta::OperandPair previousOperandAt(std::size_t t) const {
    return workload_.ops[t - 1];
  }

  /// Sub-workload reproducing window `w` for ground-truth simulation:
  /// the previous operand followed by the window's operands, so
  /// dta::characterize returns exactly w.cycles() samples whose
  /// transitions match the model queries.
  dta::Workload windowWorkload(const Window& w) const;

 private:
  StreamOptions options_;
  dta::Workload workload_;
  std::vector<Window> windows_;
};

}  // namespace tevot::dvfs

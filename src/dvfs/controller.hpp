// Closed-loop adaptive-clocking controller (DESIGN.md §5i).
//
// Per decision window the controller (1) asks a DelayBackend for the
// predicted dynamic delay of every transition, (2) picks the clock
// period max_pred * (1 + guardband) — hysteresis damps speed-ups,
// never slow-downs — clamped into [min clock, certified safe clock],
// (3) ground-truths the window against the event simulator, and
// (4) accounts the result: Razor-style detect-and-recover replays a
// violating adaptive window at the certified clock; violations the
// certified clock itself cannot absorb are *escapes*, and an
// escape-rate watchdog widens the guardband once escapes exceed
// budget. Any degraded backend answer drops the window onto the
// fallback ladder: it simply runs at the certified safe clock from
// the PR 8 certificate — slower, never less safe.
//
// Everything here is deterministic: one clock decision per window, no
// wall clock in any decision or trace line, doubles printed as
// hexfloats, so reruns with the same stream and backend answers are
// byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dvfs/backend.hpp"
#include "dvfs/stream.hpp"
#include "util/status.hpp"
#include "verify/model_rules.hpp"

namespace tevot::dvfs {

struct ControllerOptions {
  /// Safety margin over the predicted worst delay of the window.
  double guardband = 0.10;
  /// Watchdog widening: guardband += step, saturating at max.
  double guardband_step = 0.05;
  double guardband_max = 0.50;
  /// Unrecovered violations (escapes) tolerated before the watchdog
  /// widens the guardband. 0 = widen on the first escape.
  std::uint64_t escape_budget = 0;
  /// Speed-up deadband: a faster target clock is adopted only when it
  /// undercuts the current clock by this relative fraction. Slowing
  /// down (raising the period) is never damped — that is the safe
  /// direction and must act immediately.
  double hysteresis = 0.02;
  /// Floor on the chosen period [ps]; keeps a quiet window (all
  /// predicted delays ~0) from requesting an unphysical clock.
  double min_tclk_ps = 1.0;
};

/// Why a window left the adaptive path. Mirrors WindowOutcome minus
/// kOk; the counters below must exactly account for every degraded
/// backend response (checkDvfsSafety enforces the identity).
struct FallbackCounters {
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t error = 0;
  std::uint64_t disconnect = 0;

  std::uint64_t total() const { return shed + deadline + error + disconnect; }
};

/// Per-FU outcome of one closed-loop run.
struct DvfsReport {
  std::string fu;
  std::string backend;  ///< "in-process" / "serve" / "" when refused
  /// ok() when the controller ran; otherwise why adaptive mode was
  /// refused (e.g. missing or uncertified certificate) — refusal is a
  /// report, never a crash.
  util::Status status = util::Status::okStatus();

  std::size_t windows = 0;
  std::size_t adaptive_windows = 0;  ///< model-driven clock decision
  std::size_t fallback_windows = 0;  ///< degraded -> certified clock
  FallbackCounters fallback;

  std::uint64_t violations = 0;  ///< transitions with sim delay > chosen
  std::uint64_t recovered = 0;   ///< absorbed by replay at the cert clock
  std::uint64_t escapes = 0;     ///< sim delay > certified clock
  std::uint64_t replays = 0;     ///< windows re-executed at the cert clock
  std::uint64_t widenings = 0;   ///< watchdog guardband bumps
  std::uint64_t clock_changes = 0;

  double certified_tclk_ps = 0.0;
  double guardband_final = 0.0;
  /// Wall time of the workload at the worst-case (certified) clock vs
  /// the adaptive schedule including replay penalties.
  double baseline_ps = 0.0;
  double adaptive_ps = 0.0;
  double gain() const {
    return adaptive_ps > 0.0 ? baseline_ps / adaptive_ps : 0.0;
  }

  /// One line per window ("w=... src=... chosen=..."), hexfloat
  /// doubles; byte-identical across reruns with the same seed and
  /// backend answers.
  std::string trace;

  /// Flat JSON object (no trailing newline).
  std::string toJson() const;
};

/// Simulated per-transition delays [ps] for a window — the ground
/// truth the controller checks its clock choices against. Must return
/// exactly w.cycles() values.
using GroundTruth = std::function<std::vector<double>(const Window&)>;

/// Runs the closed loop over every window of `stream`. `cert` must be
/// a certified safe-tclk certificate; the caller is responsible for
/// refusing adaptive mode on a missing/invalid certificate (see
/// runDvfs), so this function requires cert.certified and
/// cert.tclk_ps > 0 (throws std::invalid_argument otherwise).
DvfsReport runController(const WindowedStream& stream, DelayBackend& backend,
                         const verify::SafeTclkCertificate& cert,
                         const ControllerOptions& options,
                         const GroundTruth& ground_truth);

}  // namespace tevot::dvfs

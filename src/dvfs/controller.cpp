#include "dvfs/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "lint/finding.hpp"

namespace tevot::dvfs {

namespace {

std::string hexFloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string jsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string DvfsReport::toJson() const {
  std::ostringstream os;
  os << "{\"fu\":\"" << lint::jsonEscape(fu) << "\""
     << ",\"backend\":\"" << lint::jsonEscape(backend) << "\""
     << ",\"status\":\""
     << (status.ok() ? "ok" : lint::jsonEscape(status.message)) << "\""
     << ",\"windows\":" << windows
     << ",\"adaptive_windows\":" << adaptive_windows
     << ",\"fallback_windows\":" << fallback_windows
     << ",\"fallback\":{\"shed\":" << fallback.shed
     << ",\"deadline\":" << fallback.deadline
     << ",\"error\":" << fallback.error
     << ",\"disconnect\":" << fallback.disconnect << "}"
     << ",\"violations\":" << violations
     << ",\"recovered\":" << recovered
     << ",\"escapes\":" << escapes
     << ",\"replays\":" << replays
     << ",\"widenings\":" << widenings
     << ",\"clock_changes\":" << clock_changes
     << ",\"certified_tclk_ps\":" << jsonDouble(certified_tclk_ps)
     << ",\"guardband_final\":" << jsonDouble(guardband_final)
     << ",\"baseline_ps\":" << jsonDouble(baseline_ps)
     << ",\"adaptive_ps\":" << jsonDouble(adaptive_ps)
     << ",\"gain\":" << jsonDouble(gain()) << "}";
  return os.str();
}

DvfsReport runController(const WindowedStream& stream, DelayBackend& backend,
                         const verify::SafeTclkCertificate& cert,
                         const ControllerOptions& options,
                         const GroundTruth& ground_truth) {
  if (!cert.certified || cert.tclk_ps <= 0.0) {
    throw std::invalid_argument(
        "runController: certificate is not a certified safe-tclk "
        "certificate (callers must refuse adaptive mode instead)");
  }
  DvfsReport report;
  report.fu = std::string(circuits::fuSlug(stream.options().kind));
  report.backend = backend.name();
  report.certified_tclk_ps = cert.tclk_ps;

  double guardband = options.guardband;
  std::uint64_t escapes_since_widen = 0;
  double last_chosen = 0.0;
  bool has_last = false;
  std::ostringstream trace;

  std::size_t index = 0;
  for (const Window& w : stream.windows()) {
    const WindowPrediction pred = backend.predictWindow(stream, w);
    const bool adaptive = pred.outcome == WindowOutcome::kOk;

    double pred_max = 0.0;
    double chosen = cert.tclk_ps;
    if (adaptive) {
      ++report.adaptive_windows;
      for (const double d : pred.delays_ps) pred_max = std::max(pred_max, d);
      double target = std::clamp(pred_max * (1.0 + guardband),
                                 options.min_tclk_ps, cert.tclk_ps);
      if (!has_last || target >= last_chosen) {
        chosen = target;  // slowing down (or first window): act now
      } else if (last_chosen - target >= options.hysteresis * last_chosen) {
        chosen = target;  // speed-up beyond the deadband
      } else {
        chosen = last_chosen;  // damped: hold the current clock
      }
    } else {
      ++report.fallback_windows;
      switch (pred.outcome) {
        case WindowOutcome::kShed: ++report.fallback.shed; break;
        case WindowOutcome::kDeadline: ++report.fallback.deadline; break;
        case WindowOutcome::kError: ++report.fallback.error; break;
        case WindowOutcome::kDisconnect: ++report.fallback.disconnect; break;
        case WindowOutcome::kOk: break;  // unreachable
      }
    }
    if (has_last && chosen != last_chosen) ++report.clock_changes;
    last_chosen = chosen;
    has_last = true;

    // Ground truth: the chosen clock meets the window, or it does not.
    const std::vector<double> sim = ground_truth(w);
    if (sim.size() != w.cycles()) {
      throw std::invalid_argument(
          "runController: ground truth returned " +
          std::to_string(sim.size()) + " delays for a window of " +
          std::to_string(w.cycles()));
    }
    std::uint64_t window_violations = 0;
    std::uint64_t window_escapes = 0;
    for (const double d : sim) {
      if (d > chosen) ++window_violations;      // strict: d == tclk latches
      if (d > cert.tclk_ps) ++window_escapes;   // beyond even the cert clock
    }
    report.violations += window_violations;
    report.escapes += window_escapes;

    const double cycles = static_cast<double>(w.cycles());
    report.baseline_ps += cycles * cert.tclk_ps;
    report.adaptive_ps += cycles * chosen;
    if (window_violations > 0 && adaptive) {
      // Razor recovery: replay the whole window at the certified
      // clock. That absorbs every violation the certificate covers;
      // what remains escapes the recovery path too.
      ++report.replays;
      report.adaptive_ps += cycles * cert.tclk_ps;
      report.recovered += window_violations - window_escapes;
    }
    // A fallback window already runs at the certified clock, so its
    // violations ARE escapes — there is no slower clock to replay at.

    escapes_since_widen += window_escapes;
    if (escapes_since_widen > options.escape_budget &&
        guardband < options.guardband_max) {
      guardband = std::min(guardband + options.guardband_step,
                           options.guardband_max);
      ++report.widenings;
      escapes_since_widen = 0;
    }

    trace << "w=" << index << " v=" << hexFloat(w.corner.voltage)
          << " t=" << hexFloat(w.corner.temperature) << " src=";
    if (adaptive) {
      trace << "adaptive pred=" << hexFloat(pred_max);
    } else {
      trace << "fallback:" << windowOutcomeName(pred.outcome) << " pred=-";
    }
    trace << " chosen=" << hexFloat(chosen) << " viol=" << window_violations
          << " esc=" << window_escapes << " g=" << hexFloat(guardband)
          << "\n";
    ++index;
  }

  report.windows = index;
  report.guardband_final = guardband;
  report.trace = trace.str();
  return report;
}

}  // namespace tevot::dvfs

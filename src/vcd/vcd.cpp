#include "vcd/vcd.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tevot::vcd {
namespace {

// VCD identifier codes use the printable ASCII range 33..126.
constexpr int kIdBase = 94;
constexpr char kIdFirst = '!';

}  // namespace

SignalId VcdData::signal(const std::string& name) const {
  for (SignalId i = 0; i < signal_names.size(); ++i) {
    if (signal_names[i] == name) return i;
  }
  throw std::out_of_range("VcdData: no signal named '" + name + "'");
}

VcdWriter::VcdWriter(std::ostream& os, std::string module)
    : os_(os), module_(std::move(module)) {}

std::string VcdWriter::idCode(SignalId signal) const {
  std::string code;
  std::uint32_t v = signal;
  do {
    code.push_back(static_cast<char>(kIdFirst + v % kIdBase));
    v /= kIdBase;
  } while (v != 0);
  return code;
}

SignalId VcdWriter::addSignal(const std::string& name) {
  if (header_written_) {
    throw std::logic_error("VcdWriter: addSignal after beginDump");
  }
  names_.push_back(name);
  return static_cast<SignalId>(names_.size() - 1);
}

void VcdWriter::beginDump() {
  if (header_written_) throw std::logic_error("VcdWriter: double beginDump");
  os_ << "$date tevot $end\n";
  os_ << "$version tevot-vcd $end\n";
  os_ << "$timescale 1ps $end\n";
  os_ << "$scope module " << module_ << " $end\n";
  for (SignalId i = 0; i < names_.size(); ++i) {
    os_ << "$var wire 1 " << idCode(i) << " " << names_[i] << " $end\n";
  }
  os_ << "$upscope $end\n";
  os_ << "$enddefinitions $end\n";
  os_ << "$dumpvars\n";
  for (SignalId i = 0; i < names_.size(); ++i) {
    os_ << "0" << idCode(i) << "\n";
  }
  os_ << "$end\n";
  header_written_ = true;
}

void VcdWriter::change(std::uint64_t time_ps, SignalId signal, bool value) {
  if (!header_written_) throw std::logic_error("VcdWriter: no header yet");
  if (signal >= names_.size()) {
    throw std::out_of_range("VcdWriter: unknown signal");
  }
  if (time_emitted_ && time_ps < current_time_) {
    throw std::logic_error("VcdWriter: time went backwards");
  }
  if (!time_emitted_ || time_ps != current_time_) {
    os_ << "#" << time_ps << "\n";
    current_time_ = time_ps;
    time_emitted_ = true;
  }
  os_ << (value ? "1" : "0") << idCode(signal) << "\n";
}

void VcdWriter::finish(std::uint64_t end_time_ps) {
  if (!header_written_) return;
  if (!time_emitted_ || end_time_ps > current_time_) {
    os_ << "#" << end_time_ps << "\n";
  }
}

VcdData parseVcd(std::istream& is) {
  VcdData data;
  std::vector<SignalId> id_map;  // dense decode table is built lazily
  auto decodeId = [](const std::string& code) -> std::uint64_t {
    std::uint64_t v = 0;
    for (auto it = code.rbegin(); it != code.rend(); ++it) {
      const char c = *it;
      if (c < kIdFirst || c > '~') {
        throw std::runtime_error("VCD parse error: bad id code '" + code +
                                 "'");
      }
      v = v * kIdBase + static_cast<std::uint64_t>(c - kIdFirst);
    }
    return v;
  };

  std::uint64_t now = 0;
  bool in_definitions = true;
  std::string tok;
  while (is >> tok) {
    if (tok == "$date" || tok == "$version" || tok == "$timescale" ||
        tok == "$scope" || tok == "$upscope" || tok == "$comment") {
      std::string word;
      std::ostringstream body;
      while (is >> word && word != "$end") body << word << ' ';
      if (tok == "$timescale") {
        std::string ts = body.str();
        if (!ts.empty() && ts.back() == ' ') ts.pop_back();
        data.timescale = ts;
      }
    } else if (tok == "$var") {
      std::string type, width, code, name, end;
      if (!(is >> type >> width >> code >> name >> end) || end != "$end") {
        throw std::runtime_error("VCD parse error: malformed $var");
      }
      if (width != "1") {
        throw std::runtime_error(
            "VCD parse error: only scalar signals supported");
      }
      const std::uint64_t id = decodeId(code);
      if (id >= data.signal_names.size()) {
        data.signal_names.resize(id + 1);
      }
      data.signal_names[id] = name;
    } else if (tok == "$enddefinitions") {
      std::string end;
      is >> end;
      in_definitions = false;
    } else if (tok == "$dumpvars" || tok == "$end") {
      // Initial-value section markers; values inside are parsed below.
    } else if (!tok.empty() && tok[0] == '#') {
      // stoull would throw a bare std::invalid_argument (or accept
      // trailing garbage) on a corrupt timestamp; keep the error typed.
      try {
        std::size_t consumed = 0;
        now = std::stoull(tok.substr(1), &consumed);
        if (consumed != tok.size() - 1) throw std::invalid_argument(tok);
      } catch (const std::exception&) {
        throw std::runtime_error("VCD parse error: bad timestamp '" + tok +
                                 "'");
      }
    } else if (!tok.empty() && (tok[0] == '0' || tok[0] == '1')) {
      if (in_definitions) {
        throw std::runtime_error(
            "VCD parse error: value change before $enddefinitions");
      }
      const bool value = tok[0] == '1';
      const std::uint64_t id = decodeId(tok.substr(1));
      if (id >= data.signal_names.size()) {
        throw std::runtime_error("VCD parse error: change for unknown signal");
      }
      data.changes.push_back(
          Change{now, static_cast<SignalId>(id), value});
    } else {
      throw std::runtime_error("VCD parse error: unexpected token '" + tok +
                               "'");
    }
  }
  (void)id_map;
  return data;
}

VcdData parseVcdString(const std::string& text) {
  std::istringstream is(text);
  return parseVcd(is);
}

}  // namespace tevot::vcd

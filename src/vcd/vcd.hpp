// Value Change Dump (VCD) writer and parser.
//
// The paper's DTA phase runs back-annotated gate-level simulation in
// ModelSim, dumps the switching activity of the observed nets (the FU
// output bits) to VCD, and extracts per-cycle dynamic delays with a
// Python parser. This module reproduces that file boundary: the timing
// simulator can dump its toggle activity as IEEE 1364 VCD (scalar
// signals, ps timescale), and the parser recovers time-ordered value
// changes that dta:: turns back into per-cycle delays.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tevot::vcd {

using SignalId = std::uint32_t;

/// One value change of one scalar signal.
struct Change {
  std::uint64_t time_ps;
  SignalId signal;
  bool value;
};

/// Parsed VCD content.
struct VcdData {
  std::string timescale;
  std::vector<std::string> signal_names;  ///< index by SignalId
  std::vector<Change> changes;            ///< ordered by time

  /// Index of a signal by name; throws std::out_of_range if missing.
  SignalId signal(const std::string& name) const;
};

/// Streams VCD text. Signals must all be registered before the first
/// value change; times must be non-decreasing.
class VcdWriter {
 public:
  explicit VcdWriter(std::ostream& os, std::string module = "top");

  /// Registers a scalar signal; returns its id.
  SignalId addSignal(const std::string& name);

  /// Writes the declaration header and initial values (all zero).
  void beginDump();

  /// Emits one value change at `time_ps`.
  void change(std::uint64_t time_ps, SignalId signal, bool value);

  /// Emits a final timestamp so readers see the full time span.
  void finish(std::uint64_t end_time_ps);

 private:
  std::string idCode(SignalId signal) const;

  std::ostream& os_;
  std::string module_;
  std::vector<std::string> names_;
  std::uint64_t current_time_ = 0;
  bool header_written_ = false;
  bool time_emitted_ = false;
};

/// Parses VCD text (the subset produced by VcdWriter: scalar signals,
/// one module scope, 0/1 values). Throws std::runtime_error on
/// malformed input.
VcdData parseVcd(std::istream& is);
VcdData parseVcdString(const std::string& text);

}  // namespace tevot::vcd

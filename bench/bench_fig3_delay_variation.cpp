// Reproduces paper Fig. 3: average dynamic delay of each FU under 9
// operating conditions (V in {0.81, 0.90, 1.00} x T in {0, 50, 100})
// and 3 datasets (random / sobel / gauss).
//
// Expected shape: delay decreases as voltage rises; the temperature
// effect flips sign across the voltage range (inverse temperature
// dependence — hotter is faster at 0.81 V, slower at 1.00 V); random
// data sensitizes markedly longer delays than the application data,
// most visibly on INT ADD.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

}  // namespace

int main(int argc, char** argv) {
  BenchScale scale = BenchScale::fromEnvironment(argc, argv);
  // Fig. 3 uses the fixed 3x3 condition subset regardless of scale.
  scale.corners = core::OperatingGrid::paper().subsampled(3, 3);
  util::ThreadPool pool(scale.jobs);
  const auto bench_start = std::chrono::steady_clock::now();

  std::printf("=== Fig. 3: average dynamic delay (ps) ===\n");
  std::printf("columns: (V, T) pairs; rows: dataset (jobs=%zu)\n\n",
              pool.threadCount());

  util::Rng rng(0xf193);
  for (const circuits::FuKind kind : circuits::kAllFus) {
    core::FuContext context(kind);
    const auto datasets = buildDatasets(kind, scale, rng);

    // Fan the whole (dataset x corner) grid plus the four ITD
    // extremes out on the pool; results come back in input order.
    const liberty::Corner itd_corners[4] = {
        {0.81, 0.0}, {0.81, 100.0}, {1.00, 0.0}, {1.00, 100.0}};
    std::vector<dta::CharacterizeJob> jobs;
    for (const DatasetStreams& dataset : datasets) {
      for (const liberty::Corner& corner : scale.corners) {
        jobs.push_back(context.characterizeJob(corner, dataset.test));
      }
    }
    for (const liberty::Corner& corner : itd_corners) {
      jobs.push_back(context.characterizeJob(corner, datasets[0].test));
    }
    const std::vector<dta::DtaTrace> traces =
        dta::characterizeAll(jobs, pool);

    std::printf("%s (gates=%zu, depth=%d)\n",
                std::string(circuits::fuName(kind)).c_str(),
                context.netlist().gateCount(), context.netlist().depth());
    std::printf("  %-12s", "dataset");
    for (const liberty::Corner& corner : scale.corners) {
      std::printf(" (%.2f,%3.0f)", corner.voltage, corner.temperature);
    }
    std::printf("\n");
    std::size_t at = 0;
    for (const DatasetStreams& dataset : datasets) {
      std::printf("  %-12s", dataset.name.c_str());
      for (std::size_t c = 0; c < scale.corners.size(); ++c) {
        std::printf(" %10.1f", traces[at++].meanDelayPs());
      }
      std::printf("\n");
    }

    // ITD check at the extremes (averaged over the random dataset).
    const double cold_low = traces[at++].meanDelayPs();
    const double hot_low = traces[at++].meanDelayPs();
    const double cold_high = traces[at++].meanDelayPs();
    const double hot_high = traces[at++].meanDelayPs();
    std::printf(
        "  ITD: at 0.81V hotter is %s (%.1f -> %.1f), at 1.00V hotter is "
        "%s (%.1f -> %.1f)\n\n",
        hot_low < cold_low ? "FASTER" : "slower", cold_low, hot_low,
        hot_high > cold_high ? "SLOWER" : "faster", cold_high, hot_high);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  writeBenchJson("fig3_delay_variation", pool.threadCount(), wall);
  return 0;
}

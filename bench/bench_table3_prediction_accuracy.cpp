// Reproduces paper Table III: average timing-error prediction
// accuracy of TEVoT vs. the Delay-based, TER-based and TEVoT-NH
// baselines, per FU and dataset, averaged across operating conditions
// and the three clock speedups.
//
// Expected shape (paper): TEVoT >= 95% everywhere; Delay-based equals
// the (often tiny) ground-truth TER because it always predicts an
// error under clock speedup; TER-based and TEVoT-NH degrade sharply
// on application data whose delay statistics deviate from the
// (random-dominated) training data.
//
// Default scale: 3x3 corner grid, reduced cycle counts. TEVOT_FULL=1
// runs all 100 Table I conditions at paper-like cycle counts.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

struct FuResult {
  std::string fu;
  // accuracies[dataset][model]
  std::vector<std::array<double, 4>> accuracies;
  std::vector<double> ground_truth_ter;
  std::vector<std::string> dataset_names;
};

FuResult runFu(circuits::FuKind kind, const BenchScale& scale,
               util::ThreadPool& pool) {
  util::Rng rng(0x7ab1e3 + static_cast<unsigned>(kind));
  core::FuContext context(kind);

  const auto datasets = buildDatasets(kind, scale, rng);
  auto traces = characterizeAll(context, datasets, scale, pool);
  const auto pooled = pooledTrainingTraces(traces);
  const core::ModelSuite suite =
      core::trainModelSuite(pooled, rng, ml::ForestParams{}, &pool);
  auto models = suite.errorModels();

  FuResult result;
  result.fu = std::string(circuits::fuName(kind));
  for (const auto& dataset : traces) {
    std::array<double, 4> accuracy{};
    double ter = 0.0;
    for (std::size_t m = 0; m < models.size(); ++m) {
      const core::EvalOutcome outcome =
          evaluateDataset(*models[m], dataset);
      accuracy[m] = outcome.accuracy();
      ter = outcome.groundTruthTer();
    }
    result.accuracies.push_back(accuracy);
    result.ground_truth_ter.push_back(ter);
    result.dataset_names.push_back(dataset.name);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::fromEnvironment(argc, argv);
  util::ThreadPool pool(scale.jobs);
  const auto bench_start = std::chrono::steady_clock::now();
  std::printf(
      "=== Table III: average timing-error prediction accuracy ===\n");
  std::printf(
      "conditions=%zu, clock speedups = 5%%/10%%/15%%, "
      "train=%zu random + %zu app cycles/corner, test=%zu/%zu, jobs=%zu\n\n",
      scale.corners.size(), scale.train_cycles_per_corner,
      scale.app_train_cycles, scale.test_cycles_per_corner,
      scale.app_test_cycles, pool.threadCount());

  const char* model_names[4] = {"TEVoT", "Delay-based", "TER-based",
                                "TEVoT-NH"};
  double totals[4] = {0, 0, 0, 0};
  std::size_t cells = 0;

  for (const circuits::FuKind kind : circuits::kAllFus) {
    const auto start = std::chrono::steady_clock::now();
    const FuResult result = runFu(kind, scale, pool);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("%s  (%.1fs)\n", result.fu.c_str(), elapsed);
    std::printf("  %-12s %10s %12s %10s %10s %10s\n", "dataset", "TEVoT",
                "Delay-based", "TER-based", "TEVoT-NH", "true TER");
    for (std::size_t d = 0; d < result.accuracies.size(); ++d) {
      std::printf("  %-12s %s %s %s %s %s\n",
                  result.dataset_names[d].c_str(),
                  formatPercent(result.accuracies[d][0], 10).c_str(),
                  formatPercent(result.accuracies[d][1], 12).c_str(),
                  formatPercent(result.accuracies[d][2], 10).c_str(),
                  formatPercent(result.accuracies[d][3], 10).c_str(),
                  formatPercent(result.ground_truth_ter[d], 10).c_str());
      for (int m = 0; m < 4; ++m) totals[m] += result.accuracies[d][m];
      ++cells;
    }
    std::printf("\n");
  }

  std::printf("Averages over all FUs and datasets (paper: TEVoT 98.25%%):\n");
  for (int m = 0; m < 4; ++m) {
    std::printf("  %-12s %s\n", model_names[m],
                formatPercent(totals[m] / static_cast<double>(cells),
                              10)
                    .c_str());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  writeBenchJson(
      "table3_prediction_accuracy", pool.threadCount(), wall,
      {{"tevot_accuracy", totals[0] / static_cast<double>(cells)},
       {"conditions", static_cast<double>(scale.corners.size())}});
  return 0;
}

// Reproduces the paper Sec. V-C claim that TEVoT inference is ~100x
// faster than back-annotated gate-level simulation, and that the gap
// widens with circuit complexity (the model's cost is a fixed set of
// decision rules; the simulator's cost scales with gate count).
//
// Google-benchmark microbenchmarks: per FU, the cost of one simulated
// cycle vs. one TEVoT delay prediction. A summary table with the
// measured speedup factors is printed after the benchmark run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

constexpr liberty::Corner kCorner{0.90, 50.0};

/// Trained model + simulator bundle per FU, built once.
struct FuBundle {
  std::unique_ptr<core::FuContext> context;
  core::TevotModel model;
  dta::Workload workload;
};

FuBundle& bundleFor(circuits::FuKind kind) {
  static std::map<circuits::FuKind, FuBundle> bundles;
  auto it = bundles.find(kind);
  if (it != bundles.end()) return it->second;

  FuBundle bundle;
  bundle.context = std::make_unique<core::FuContext>(kind);
  util::Rng rng(0x5eed + static_cast<unsigned>(kind));
  const auto train_wl = dta::randomWorkloadFor(kind, 800, rng);
  std::vector<dta::DtaTrace> traces;
  traces.push_back(bundle.context->characterize(kCorner, train_wl));
  bundle.model = core::TevotModel();
  bundle.model.train(traces, rng);
  bundle.workload = dta::randomWorkloadFor(kind, 4096, rng);
  return bundles.emplace(kind, std::move(bundle)).first->second;
}

void BM_GateLevelSimCycle(benchmark::State& state) {
  const auto kind = static_cast<circuits::FuKind>(state.range(0));
  FuBundle& bundle = bundleFor(kind);
  sim::TimingSimulator simulator(bundle.context->netlist(),
                                 bundle.context->delaysAt(kCorner));
  std::vector<std::uint8_t> bits(64);
  circuits::encodeOperandsInto(bundle.workload.ops[0].a,
                               bundle.workload.ops[0].b, bits);
  simulator.reset(bits);
  std::size_t at = 1;
  for (auto _ : state) {
    const auto& op = bundle.workload.ops[at];
    circuits::encodeOperandsInto(op.a, op.b, bits);
    benchmark::DoNotOptimize(simulator.step(bits).dynamic_delay_ps);
    at = (at + 1) % bundle.workload.ops.size();
  }
  state.SetLabel(std::string(circuits::fuName(kind)));
}

void BM_TevotPredictCycle(benchmark::State& state) {
  const auto kind = static_cast<circuits::FuKind>(state.range(0));
  FuBundle& bundle = bundleFor(kind);
  std::size_t at = 1;
  for (auto _ : state) {
    const auto& op = bundle.workload.ops[at];
    const auto& prev = bundle.workload.ops[at - 1];
    benchmark::DoNotOptimize(
        bundle.model.predictDelay(op.a, op.b, prev.a, prev.b, kCorner));
    at = at + 1 < bundle.workload.ops.size() ? at + 1 : 1;
  }
  state.SetLabel(std::string(circuits::fuName(kind)));
}

}  // namespace

BENCHMARK(BM_GateLevelSimCycle)->DenseRange(0, 3)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_TevotPredictCycle)->DenseRange(0, 3)->Unit(
    benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Summary: measured speedup factors per FU.
  std::printf("\n=== TEVoT inference speedup over gate-level simulation "
              "===\n");
  std::printf("  %-8s %14s %14s %10s\n", "FU", "sim us/cycle",
              "model us/cycle", "speedup");
  for (const circuits::FuKind kind : circuits::kAllFus) {
    FuBundle& bundle = bundleFor(kind);
    sim::TimingSimulator simulator(bundle.context->netlist(),
                                   bundle.context->delaysAt(kCorner));
    std::vector<std::uint8_t> bits(64);
    circuits::encodeOperandsInto(bundle.workload.ops[0].a,
                                 bundle.workload.ops[0].b, bits);
    simulator.reset(bits);
    using Clock = std::chrono::steady_clock;
    const std::size_t n = bundle.workload.ops.size() - 1;

    auto t0 = Clock::now();
    double checksum = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      const auto& op = bundle.workload.ops[i];
      circuits::encodeOperandsInto(op.a, op.b, bits);
      checksum += simulator.step(bits).dynamic_delay_ps;
    }
    const double sim_us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0)
            .count() /
        static_cast<double>(n);

    t0 = Clock::now();
    for (std::size_t i = 1; i <= n; ++i) {
      const auto& op = bundle.workload.ops[i];
      const auto& prev = bundle.workload.ops[i - 1];
      checksum +=
          bundle.model.predictDelay(op.a, op.b, prev.a, prev.b, kCorner);
    }
    const double model_us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0)
            .count() /
        static_cast<double>(n);
    benchmark::DoNotOptimize(checksum);

    std::printf("  %-8s %14.3f %14.3f %9.1fx\n",
                std::string(circuits::fuName(kind)).c_str(), sim_us,
                model_us, sim_us / model_us);
  }
  std::printf("paper: ~100x on average, growing with circuit size.\n");
  return 0;
}

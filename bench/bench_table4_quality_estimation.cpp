// Reproduces paper Table IV: application output-quality estimation
// accuracy of TEVoT vs. the baselines on the Sobel and Gaussian
// filters.
//
// Protocol (paper Sec. V-D): the filters run in integer mode with
// timing errors injected into INT ADD and INT MUL — the units whose
// long-tailed application delay spectra put different grid cells on
// both sides of the quality cliff (the FP units' application streams
// re-sensitize the same dominant path nearly every cycle, so their
// quality collapses at any speedup). Ground truth decides
// per-operation errors via back-annotated gate-level simulation; as
// in the paper, every erroneous FU result (ground truth and models
// alike) is replaced by a random value. Every output image is
// classified acceptable (PSNR >= 30 dB vs. the error-free output) or
// not; estimation accuracy is the fraction of (condition, clock,
// image) cells where a model's classification matches ground truth.
//
// Expected shape: TEVoT ~97%; Delay-based always estimates
// "unacceptable" (right only when the output truly degrades);
// TER-based and TEVoT-NH miss the workload dependence and misjudge
// many cells.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

constexpr circuits::FuKind kInjectedFus[] = {circuits::FuKind::kIntAdd,
                                             circuits::FuKind::kIntMul};

struct AppExperiment {
  apps::AppKind app;
  // Per injected FU: context, trained suite, per-corner base clocks.
  struct PerFu {
    std::unique_ptr<core::FuContext> context;
    core::ModelSuite suite;
    std::vector<std::unique_ptr<core::ErrorModel>> models;
    std::map<std::pair<int, int>, double> base_clock;
  };
  std::map<circuits::FuKind, PerFu> fus;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::fromEnvironment(argc, argv);
  util::ThreadPool pool(scale.jobs);
  const auto bench_start = std::chrono::steady_clock::now();
  util::Rng rng(0x7ab1e4);

  // Image set: training slice defines base clocks & training data,
  // test slice is evaluated.
  apps::SynthImageParams image_params;
  image_params.width = scale.image_size;
  image_params.height = scale.image_size;
  const auto images =
      apps::synthImageSet(scale.image_count, 0xbf1u, image_params);
  const std::size_t train_images = std::max<std::size_t>(1, images.size() / 6);
  const std::size_t eval_images = util::fullScale() ? 2 : 1;

  std::printf("=== Table IV: application quality estimation accuracy ===\n");
  std::printf(
      "conditions=%zu x 3 clock speedups x %zu image(s), %dx%d px, "
      "PSNR threshold %.0f dB\n\n",
      scale.corners.size(), eval_images, scale.image_size,
      scale.image_size, apps::kAcceptablePsnrDb);

  const char* model_names[4] = {"TEVoT", "Delay-based", "TER-based",
                                "TEVoT-NH"};
  std::printf("  %-12s %10s %12s %10s %10s %12s\n", "Application",
              "TEVoT", "Delay-based", "TER-based", "TEVoT-NH",
              "GT unaccept.");

  double totals[4] = {0, 0, 0, 0};
  for (const apps::AppKind app : apps::kAllApps) {
    AppExperiment experiment;
    experiment.app = app;

    // Train per-FU model suites from random + app training streams.
    const std::span<const apps::Image> train_span{images.data(),
                                                  train_images};
    auto app_streams = apps::profileAppWorkloads(app, train_span);
    for (const circuits::FuKind kind : kInjectedFus) {
      AppExperiment::PerFu per_fu;
      per_fu.context = std::make_unique<core::FuContext>(kind);
      std::vector<dta::DtaTrace> train_traces;   // forest training
      std::vector<dta::DtaTrace> calib_traces;   // baselines + clocks
      const auto random_wl = dta::randomWorkloadFor(
          kind, scale.train_cycles_per_corner, rng);
      const auto app_wl =
          dta::resizeWorkload(app_streams[kind], scale.app_train_cycles);
      // The base clock ("fastest error-free clock" of the dataset at
      // each condition) and the TER/Delay baselines need the delay
      // *tail*, which a short training sample misses — an eval image
      // runs tens of thousands of FU ops. Characterize a much longer
      // slice for calibration; the forests keep the short sample.
      const auto app_long = dta::resizeWorkload(
          app_streams[kind],
          std::max<std::size_t>(8000, 8 * scale.app_train_cycles));
      // Characterize the (workload x corner) grid on the pool; jobs
      // are ordered [random, app, app_long] per corner.
      std::vector<dta::CharacterizeJob> jobs;
      for (const liberty::Corner& corner : scale.corners) {
        jobs.push_back(per_fu.context->characterizeJob(corner, random_wl));
        jobs.push_back(per_fu.context->characterizeJob(corner, app_wl));
        jobs.push_back(per_fu.context->characterizeJob(corner, app_long));
      }
      std::vector<dta::DtaTrace> grid = dta::characterizeAll(jobs, pool);
      for (std::size_t c = 0; c < scale.corners.size(); ++c) {
        const liberty::Corner& corner = scale.corners[c];
        train_traces.push_back(grid[3 * c]);
        train_traces.push_back(std::move(grid[3 * c + 1]));
        calib_traces.push_back(std::move(grid[3 * c]));
        calib_traces.push_back(std::move(grid[3 * c + 2]));
        // Base clock: the dataset's fastest error-free clock at this
        // condition ("so that the output has timing errors"), from
        // the long app characterization — as in Table III.
        per_fu.base_clock[core::cornerKey(corner)] =
            calib_traces.back().baseClockPs();
      }
      per_fu.suite =
          core::trainModelSuite(train_traces, rng, ml::ForestParams{},
                                &pool);
      per_fu.suite.delay_based = core::DelayBasedModel();
      per_fu.suite.delay_based.calibrate(calib_traces);
      per_fu.suite.ter_based = core::TerBasedModel();
      per_fu.suite.ter_based.calibrate(calib_traces);
      auto [it, inserted] = experiment.fus.emplace(kind, std::move(per_fu));
      // Materialize the ErrorModel views once, after the suite has
      // reached its final address.
      it->second.models = it->second.suite.errorModels();
    }

    // Evaluate each (condition, clock, image) cell.
    std::size_t matched[4] = {0, 0, 0, 0};
    std::size_t cells = 0;
    std::size_t gt_unacceptable = 0;
    for (const liberty::Corner& corner : scale.corners) {
      for (const double speedup : dta::kClockSpeedups) {
        for (std::size_t img = 0; img < eval_images; ++img) {
          const apps::Image& input = images[train_images + img];
          const apps::Image reference =
              apps::runApp(app, input, *std::make_unique<apps::ExactExecutor>(),
                           apps::NumericMode::kInteger);

          // Ground truth: simulation-backed injection.
          apps::ErrorInjectingExecutor gt_exec(0x61u + cells);
          for (const circuits::FuKind kind : kInjectedFus) {
            auto& per_fu = experiment.fus.at(kind);
            const double tclk = dta::speedupClockPs(
                per_fu.base_clock.at(core::cornerKey(corner)), speedup);
            gt_exec.setOracle(
                kind, std::make_unique<apps::SimOracle>(
                          per_fu.context->netlist(),
                          per_fu.context->delaysAt(corner), tclk,
                          apps::SimOracle::ValueMode::kRandomValue,
                          0x5130u + cells));
          }
          const apps::Image gt_image = apps::runApp(
              app, input, gt_exec, apps::NumericMode::kInteger);
          const bool gt_ok = apps::isAcceptable(reference, gt_image);
          if (!gt_ok) ++gt_unacceptable;

          // Each model: predictive injection with random values.
          for (int m = 0; m < 4; ++m) {
            apps::ErrorInjectingExecutor exec(0x77u + cells * 7 +
                                              static_cast<unsigned>(m));
            for (const circuits::FuKind kind : kInjectedFus) {
              auto& per_fu = experiment.fus.at(kind);
              const double tclk = dta::speedupClockPs(
                  per_fu.base_clock.at(core::cornerKey(corner)), speedup);
              exec.setOracle(
                  kind, std::make_unique<apps::ModelOracle>(
                            *per_fu.models[static_cast<std::size_t>(m)],
                            corner, tclk, 0x91u + cells));
            }
            const apps::Image model_image = apps::runApp(
                app, input, exec, apps::NumericMode::kInteger);
            const bool model_ok =
                apps::isAcceptable(reference, model_image);
            if (model_ok == gt_ok) ++matched[m];
          }
          ++cells;
        }
      }
    }

    std::printf("  %-12s", std::string(apps::appName(app)).c_str());
    for (int m = 0; m < 4; ++m) {
      const double accuracy =
          static_cast<double>(matched[m]) / static_cast<double>(cells);
      totals[m] += accuracy;
      std::printf(" %s", formatPercent(accuracy,
                                       m == 1 ? 12 : 10).c_str());
    }
    std::printf(" %s\n",
                formatPercent(static_cast<double>(gt_unacceptable) /
                                  static_cast<double>(cells),
                              12)
                    .c_str());
  }

  std::printf("\nAverages (paper: TEVoT 97%%, Delay-based 79.9%%, "
              "TER-based 59.1%%, TEVoT-NH 65%%):\n");
  for (int m = 0; m < 4; ++m) {
    std::printf("  %-12s %s\n", model_names[m],
                formatPercent(totals[m] / 2.0, 10).c_str());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  writeBenchJson("table4_quality_estimation", pool.threadCount(), wall,
                 {{"tevot_accuracy", totals[0] / 2.0}});
  return 0;
}

// Extension bench: process variation (the paper's stated future
// work — "developing error models for more variation parameters such
// as process variations").
//
// The substrate already models per-gate local Vth mismatch; the
// VtParams::vth_seed knob selects which fabricated die the offsets
// are drawn for. This bench demonstrates the two phenomena a
// process-aware TEVoT would have to handle:
//
//  E1  Die-to-die timing spread: the same workload on the same design
//      has different delay distributions (and different timing-error
//      rates at a fixed clock) on different dies, growing with the
//      mismatch sigma.
//  E2  Model transfer across dies: a TEVoT model trained on one die
//      loses accuracy on another — quantifying how much per-die
//      (or variation-feature-augmented) training matters.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

}  // namespace

int main() {
  const BenchScale scale = BenchScale::fromEnvironment();
  const circuits::FuKind kind = circuits::FuKind::kIntAdd;
  const liberty::Corner corner{0.85, 50.0};
  const int dies = 6;

  std::printf("=== Extension: process variation (paper future work) "
              "===\n\n");
  util::Rng rng(0xd1e);
  const auto workload =
      dta::randomWorkloadFor(kind, scale.train_cycles_per_corner, rng);
  const auto test_workload =
      dta::randomWorkloadFor(kind, scale.test_cycles_per_corner, rng);

  std::printf("E1: die-to-die spread, %s at (%.2f V, %.0f C), %d dies\n",
              std::string(circuits::fuName(kind)).c_str(), corner.voltage,
              corner.temperature, dies);
  std::printf("  %10s %14s %14s %16s\n", "sigma", "mean spread",
              "max spread", "TER range @-10%");
  for (const double sigma : {0.0, 0.0125, 0.025, 0.05}) {
    util::RunningStats mean_stats, max_stats;
    double ter_min = 1.0, ter_max = 0.0;
    double reference_clock = 0.0;
    for (int die = 0; die < dies; ++die) {
      liberty::VtParams params;
      params.vth_sigma = sigma;
      params.vth_seed = static_cast<std::uint64_t>(die);
      core::FuContext context(kind,
                              liberty::CellLibrary::defaultLibrary(),
                              liberty::VtModel(params));
      const dta::DtaTrace trace = context.characterize(corner, workload);
      if (die == 0) {
        reference_clock = dta::speedupClockPs(trace.baseClockPs(), 0.10);
      }
      mean_stats.add(trace.meanDelayPs());
      max_stats.add(trace.maxDelayPs());
      const double ter = trace.timingErrorRate(reference_clock);
      ter_min = std::min(ter_min, ter);
      ter_max = std::max(ter_max, ter);
    }
    std::printf("  %9.1fmV %13.1f%% %13.1f%% %7.2f%%..%-6.2f%%\n",
                sigma * 1000.0,
                100.0 * (mean_stats.max() - mean_stats.min()) /
                    mean_stats.mean(),
                100.0 * (max_stats.max() - max_stats.min()) /
                    max_stats.mean(),
                100.0 * ter_min, 100.0 * ter_max);
  }
  std::printf("  (with sigma = 0 every die is identical; spread and "
              "TER variability grow with mismatch)\n\n");

  std::printf("E2: TEVoT transfer across dies (sigma = 25 mV)\n");
  // Train on die 0; evaluate per-cycle error prediction on dies 0..N.
  liberty::VtParams die0;
  die0.vth_seed = 0;
  core::FuContext train_context(kind,
                                liberty::CellLibrary::defaultLibrary(),
                                liberty::VtModel(die0));
  std::vector<dta::DtaTrace> train_traces;
  train_traces.push_back(train_context.characterize(corner, workload));
  const double tclk =
      dta::speedupClockPs(train_traces[0].baseClockPs(), 0.10);
  util::Rng train_rng(0xd1e2);
  core::TevotModel model;
  model.train(train_traces, train_rng);
  core::TevotErrorModel error_model(model);

  std::printf("  %6s %16s %12s\n", "die", "accuracy @-10%", "true TER");
  for (int die = 0; die < dies; ++die) {
    liberty::VtParams params;
    params.vth_seed = static_cast<std::uint64_t>(die);
    core::FuContext context(kind, liberty::CellLibrary::defaultLibrary(),
                            liberty::VtModel(params));
    const dta::DtaTrace test = context.characterize(corner, test_workload);
    const core::EvalOutcome outcome =
        core::evaluateOnTrace(error_model, test, tclk);
    std::printf("  %6d %15.2f%% %11.2f%%%s\n", die,
                100.0 * outcome.accuracy(),
                100.0 * outcome.groundTruthTer(),
                die == 0 ? "   <- training die" : "");
  }
  std::printf("\nA process-aware TEVoT (per-die features or per-die "
              "calibration) is the natural extension; the substrate "
              "hooks are in place.\n");
  return 0;
}

// Closed-loop adaptive-clocking bench: throughput gained by letting
// TEVoT pick the per-window clock vs running every cycle at the
// worst-case certified clock, with the full recovery machinery in the
// loop (Razor-style replay, guardband watchdog, certificate
// fallback). This is the paper's motivating application measured end
// to end: the model's headroom over the static STA bound is exactly
// the frequency the controller can safely reclaim.
//
// Two outputs:
//  * bench_out/dvfs_closed_loop.json (TEVOT_BENCH_OUT),
//  * BENCH_dvfs_closed_loop.json in the current directory — run from
//    the repo root so the committed copy tracks gain across PRs.
//
// Knobs:
//   TEVOT_DVFS_TRAIN_CYCLES  training ops per corner   (default 300)
//   TEVOT_DVFS_CYCLES        stream ops per FU         (default 1025)
//   TEVOT_DVFS_WINDOW        transitions per decision  (default 16)
//   TEVOT_DVFS_GUARDBAND     guardband x100 (percent)  (default 25)
//   TEVOT_DVFS_SEED          stream seed               (default 1)
//
// Window size and guardband trade throughput against replay cost: a
// violating window replays whole at the certified clock, so the
// expected replay cost over N transitions is N*(1-(1-p)^W)*tclk_cert
// for per-transition violation probability p — shrinking W (and
// shrinking p via the guardband) is what turns model headroom into
// actual gain. The defaults hold gain > 1 on both FUs at the bench's
// reduced training scale.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dvfs/run.hpp"
#include "tevot/model.hpp"
#include "tevot/pipeline.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace tevot;
using Clock = std::chrono::steady_clock;

core::TevotModel trainModel(core::FuContext& context, std::size_t cycles,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<dta::DtaTrace> traces;
  for (const liberty::Corner corner :
       {liberty::Corner{0.85, 25.0}, liberty::Corner{1.00, 75.0}}) {
    traces.push_back(context.characterize(
        corner, dta::randomWorkloadFor(context.kind(), cycles, rng)));
  }
  core::TevotModel model;
  model.train(traces, rng);
  return model;
}

/// Sound certificate from the STA bound at the worst grid corner (the
/// delay monotonicity direction: low V, high T) plus 5% margin — the
/// same construction `tevot_cli verify-model --cert` certifies, done
/// in-process so the bench is self-contained.
verify::SafeTclkCertificate makeCertificate(core::FuContext& context) {
  verify::SafeTclkCertificate cert;
  cert.model_path = std::string(circuits::fuSlug(context.kind()));
  cert.history = true;
  cert.feature_count = 1;
  cert.tree_count = 1;
  cert.v_lo = 0.81;
  cert.v_hi = 1.00;
  cert.t_lo = 0.0;
  cert.t_hi = 100.0;
  cert.tclk_ps = context.staCriticalPathPs({0.81, 100.0}) * 1.05;
  cert.certified = true;
  return cert;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale =
      bench::BenchScale::fromEnvironment(argc, argv);
  const auto train_cycles = static_cast<std::size_t>(
      util::envInt("TEVOT_DVFS_TRAIN_CYCLES", 300));
  const auto stream_cycles =
      static_cast<std::size_t>(util::envInt("TEVOT_DVFS_CYCLES", 1025));
  const auto window =
      static_cast<std::size_t>(util::envInt("TEVOT_DVFS_WINDOW", 16));
  const double guardband =
      static_cast<double>(util::envInt("TEVOT_DVFS_GUARDBAND", 25)) / 100.0;
  const auto seed =
      static_cast<std::uint64_t>(util::envInt("TEVOT_DVFS_SEED", 1));

  const auto start = Clock::now();
  const std::vector<circuits::FuKind> kinds = {circuits::FuKind::kIntAdd,
                                               circuits::FuKind::kIntMul};

  std::vector<std::unique_ptr<core::FuContext>> contexts;
  std::vector<std::unique_ptr<core::TevotModel>> models;
  std::vector<dvfs::FuSetup> fus;
  for (const circuits::FuKind kind : kinds) {
    contexts.push_back(std::make_unique<core::FuContext>(kind));
    models.push_back(std::make_unique<core::TevotModel>(
        trainModel(*contexts.back(), train_cycles, seed + 17)));
    dvfs::FuSetup setup;
    setup.kind = kind;
    setup.model = models.back().get();
    setup.cert = makeCertificate(*contexts.back());
    fus.push_back(std::move(setup));
  }

  util::FaultInjector quiet;  // clean run: gain without induced faults
  dvfs::RunOptions options;
  options.stream.cycles = stream_cycles;
  options.stream.window = window;
  options.stream.seed = seed;
  options.controller.guardband = guardband;
  options.faults = &quiet;

  util::ThreadPool pool(scale.jobs);
  const dvfs::RunReport run = dvfs::runDvfs(fus, options, pool);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<std::pair<std::string, double>> metrics = {
      {"train_cycles", static_cast<double>(train_cycles)},
      {"stream_cycles", static_cast<double>(stream_cycles)},
      {"window", static_cast<double>(window)},
  };
  bool all_ok = true;
  for (const dvfs::DvfsReport& report : run.fus) {
    if (!report.status.ok()) {
      std::fprintf(stderr, "bench_dvfs_closed_loop: %s refused: %s\n",
                   report.fu.c_str(), report.status.message.c_str());
      all_ok = false;
      continue;
    }
    std::printf(
        "  %s: certified %.1f ps, gain %.3fx over %zu windows "
        "(viol=%llu recovered=%llu escapes=%llu widenings=%llu)\n",
        report.fu.c_str(), report.certified_tclk_ps, report.gain(),
        report.windows,
        static_cast<unsigned long long>(report.violations),
        static_cast<unsigned long long>(report.recovered),
        static_cast<unsigned long long>(report.escapes),
        static_cast<unsigned long long>(report.widenings));
    metrics.emplace_back(report.fu + "_gain", report.gain());
    metrics.emplace_back(report.fu + "_escapes",
                         static_cast<double>(report.escapes));
    metrics.emplace_back(report.fu + "_fallback_windows",
                         static_cast<double>(report.fallback_windows));
  }
  bench::writeBenchJson("dvfs_closed_loop", scale.jobs, wall, metrics);

  // The committed repo-root copy (run from the repo root).
  std::ofstream os("BENCH_dvfs_closed_loop.json");
  if (os) {
    os << "{\"wall_clock_s\":" << wall
       << ",\"report\":" << run.toJson("bench") << "}\n";
  }
  return all_ok ? 0 : 1;
}

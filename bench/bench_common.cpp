#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace tevot::bench {

BenchScale BenchScale::fromEnvironment(int argc, char** argv) {
  const bool full = util::fullScale();
  BenchScale scale;
  const auto grid = core::OperatingGrid::paper();
  if (full) {
    scale.corners = grid.corners();  // all 100 Table I conditions
    scale.train_cycles_per_corner = 2000;
    scale.test_cycles_per_corner = 2000;
    scale.app_train_cycles = 1000;
    scale.app_test_cycles = 2000;
    scale.image_count = 12;
    scale.image_size = 64;
  } else {
    scale.corners = grid.subsampled(3, 3);  // the Fig. 3 corner set
    scale.train_cycles_per_corner = 1500;
    scale.test_cycles_per_corner = 700;
    scale.app_train_cycles = 700;
    scale.app_test_cycles = 700;
    scale.image_count = 6;
    scale.image_size = 48;
  }
  const int nv = static_cast<int>(util::envInt("TEVOT_GRID_V", 0));
  const int nt = static_cast<int>(util::envInt("TEVOT_GRID_T", 0));
  if (nv > 0 && nt > 0) scale.corners = grid.subsampled(nv, nt);
  scale.train_cycles_per_corner = static_cast<std::size_t>(util::envInt(
      "TEVOT_TRAIN_CYCLES",
      static_cast<long>(scale.train_cycles_per_corner)));
  scale.test_cycles_per_corner = static_cast<std::size_t>(util::envInt(
      "TEVOT_TEST_CYCLES", static_cast<long>(scale.test_cycles_per_corner)));
  scale.app_train_cycles = static_cast<std::size_t>(util::envInt(
      "TEVOT_APP_TRAIN_CYCLES", static_cast<long>(scale.app_train_cycles)));
  scale.app_test_cycles = static_cast<std::size_t>(util::envInt(
      "TEVOT_APP_TEST_CYCLES", static_cast<long>(scale.app_test_cycles)));
  scale.image_count = static_cast<std::size_t>(util::envInt(
      "TEVOT_IMAGES", static_cast<long>(scale.image_count)));
  scale.image_size = static_cast<int>(util::envInt(
      "TEVOT_IMAGE_SIZE", scale.image_size));
  scale.jobs = static_cast<std::size_t>(
      util::envInt("TEVOT_JOBS", static_cast<long>(scale.jobs)));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      scale.jobs = static_cast<std::size_t>(std::atol(argv[i + 1]));
      ++i;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      scale.jobs = static_cast<std::size_t>(std::atol(argv[i] + 7));
    }
  }
  if (scale.jobs == 0) scale.jobs = util::ThreadPool::hardwareThreads();
  return scale;
}

std::vector<DatasetStreams> buildDatasets(circuits::FuKind kind,
                                          const BenchScale& scale,
                                          util::Rng& rng) {
  std::vector<DatasetStreams> datasets;

  DatasetStreams random_streams;
  random_streams.name = "random_data";
  random_streams.train = dta::randomWorkloadFor(
      kind, scale.train_cycles_per_corner, rng, "random_data");
  random_streams.test = dta::randomWorkloadFor(
      kind, scale.test_cycles_per_corner, rng, "random_data");
  datasets.push_back(std::move(random_streams));

  // Application datasets: profile the filters over the synthetic
  // image set. The paper trains on 5% of images and tests on the
  // rest; we slice the profiled stream the same way (the train slice
  // comes from the leading images, the test slice from the
  // remainder).
  apps::SynthImageParams image_params;
  image_params.width = scale.image_size;
  image_params.height = scale.image_size;
  const std::vector<apps::Image> images =
      apps::synthImageSet(scale.image_count, /*seed=*/0xbf1u, image_params);
  const std::size_t train_images = std::max<std::size_t>(1, images.size() / 6);
  const std::span<const apps::Image> train_span{images.data(), train_images};
  const std::span<const apps::Image> test_span{
      images.data() + train_images, images.size() - train_images};

  for (const apps::AppKind app : apps::kAllApps) {
    auto train_streams = apps::profileAppWorkloads(app, train_span);
    auto test_streams = apps::profileAppWorkloads(app, test_span);
    DatasetStreams streams;
    streams.name = train_streams[kind].name;
    streams.train =
        dta::resizeWorkload(train_streams[kind], scale.app_train_cycles);
    streams.test =
        dta::resizeWorkload(test_streams[kind], scale.app_test_cycles);
    datasets.push_back(std::move(streams));
  }
  return datasets;
}

std::vector<DatasetTraces> characterizeAll(
    core::FuContext& context, const std::vector<DatasetStreams>& datasets,
    const BenchScale& scale, util::ThreadPool& pool) {
  // Flatten the (dataset x corner x train/test) grid into one job
  // list, fan it out, then reassemble in the same order.
  std::vector<dta::CharacterizeJob> jobs;
  jobs.reserve(datasets.size() * scale.corners.size() * 2);
  for (const DatasetStreams& dataset : datasets) {
    for (const liberty::Corner& corner : scale.corners) {
      jobs.push_back(context.characterizeJob(corner, dataset.train));
      jobs.push_back(context.characterizeJob(corner, dataset.test));
    }
  }
  std::vector<dta::DtaTrace> results = dta::characterizeAll(jobs, pool);

  std::vector<DatasetTraces> all;
  all.reserve(datasets.size());
  std::size_t at = 0;
  for (const DatasetStreams& dataset : datasets) {
    DatasetTraces traces;
    traces.name = dataset.name;
    for (std::size_t c = 0; c < scale.corners.size(); ++c) {
      traces.train.push_back(std::move(results[at++]));
      traces.test.push_back(std::move(results[at++]));
    }
    all.push_back(std::move(traces));
  }
  return all;
}

std::vector<dta::DtaTrace> pooledTrainingTraces(
    const std::vector<DatasetTraces>& traces) {
  std::vector<dta::DtaTrace> pooled;
  for (const DatasetTraces& dataset : traces) {
    pooled.insert(pooled.end(), dataset.train.begin(), dataset.train.end());
  }
  return pooled;
}

core::EvalOutcome evaluateDataset(core::ErrorModel& model,
                                  const DatasetTraces& traces) {
  std::vector<core::EvalOutcome> outcomes;
  for (std::size_t c = 0; c < traces.test.size(); ++c) {
    const double base_clock = traces.train[c].baseClockPs();
    for (const double speedup : dta::kClockSpeedups) {
      outcomes.push_back(core::evaluateOnTrace(
          model, traces.test[c], dta::speedupClockPs(base_clock, speedup)));
    }
  }
  return core::mergeOutcomes(outcomes);
}

std::string formatPercent(double fraction, int width) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%*.2f%%", width - 1,
                fraction * 100.0);
  return buffer;
}

void writeBenchJson(
    const std::string& bench_name, std::size_t jobs, double wall_seconds,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::filesystem::path dir =
      util::envString("TEVOT_BENCH_OUT", "bench_out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path = dir / (bench_name + ".json");
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "writeBenchJson: cannot open %s\n",
                 path.string().c_str());
    return;
  }
  os << "{\n"
     << "  \"bench\": \"" << bench_name << "\",\n"
     << "  \"jobs\": " << jobs << ",\n"
     << "  \"wall_clock_s\": " << wall_seconds;
  for (const auto& [key, value] : metrics) {
    os << ",\n  \"" << key << "\": " << value;
  }
  os << "\n}\n";
  std::printf("wrote %s (jobs=%zu, wall=%.2fs)\n", path.string().c_str(),
              jobs, wall_seconds);
}

}  // namespace tevot::bench

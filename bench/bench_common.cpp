#include "bench_common.hpp"

#include <cstdio>

namespace tevot::bench {

BenchScale BenchScale::fromEnvironment() {
  const bool full = util::fullScale();
  BenchScale scale;
  const auto grid = core::OperatingGrid::paper();
  if (full) {
    scale.corners = grid.corners();  // all 100 Table I conditions
    scale.train_cycles_per_corner = 2000;
    scale.test_cycles_per_corner = 2000;
    scale.app_train_cycles = 1000;
    scale.app_test_cycles = 2000;
    scale.image_count = 12;
    scale.image_size = 64;
  } else {
    scale.corners = grid.subsampled(3, 3);  // the Fig. 3 corner set
    scale.train_cycles_per_corner = 1500;
    scale.test_cycles_per_corner = 700;
    scale.app_train_cycles = 700;
    scale.app_test_cycles = 700;
    scale.image_count = 6;
    scale.image_size = 48;
  }
  const int nv = static_cast<int>(util::envInt("TEVOT_GRID_V", 0));
  const int nt = static_cast<int>(util::envInt("TEVOT_GRID_T", 0));
  if (nv > 0 && nt > 0) scale.corners = grid.subsampled(nv, nt);
  scale.train_cycles_per_corner = static_cast<std::size_t>(util::envInt(
      "TEVOT_TRAIN_CYCLES",
      static_cast<long>(scale.train_cycles_per_corner)));
  scale.test_cycles_per_corner = static_cast<std::size_t>(util::envInt(
      "TEVOT_TEST_CYCLES", static_cast<long>(scale.test_cycles_per_corner)));
  scale.app_train_cycles = static_cast<std::size_t>(util::envInt(
      "TEVOT_APP_TRAIN_CYCLES", static_cast<long>(scale.app_train_cycles)));
  scale.app_test_cycles = static_cast<std::size_t>(util::envInt(
      "TEVOT_APP_TEST_CYCLES", static_cast<long>(scale.app_test_cycles)));
  scale.image_count = static_cast<std::size_t>(util::envInt(
      "TEVOT_IMAGES", static_cast<long>(scale.image_count)));
  scale.image_size = static_cast<int>(util::envInt(
      "TEVOT_IMAGE_SIZE", scale.image_size));
  return scale;
}

std::vector<DatasetStreams> buildDatasets(circuits::FuKind kind,
                                          const BenchScale& scale,
                                          util::Rng& rng) {
  std::vector<DatasetStreams> datasets;

  DatasetStreams random_streams;
  random_streams.name = "random_data";
  random_streams.train = dta::randomWorkloadFor(
      kind, scale.train_cycles_per_corner, rng, "random_data");
  random_streams.test = dta::randomWorkloadFor(
      kind, scale.test_cycles_per_corner, rng, "random_data");
  datasets.push_back(std::move(random_streams));

  // Application datasets: profile the filters over the synthetic
  // image set. The paper trains on 5% of images and tests on the
  // rest; we slice the profiled stream the same way (the train slice
  // comes from the leading images, the test slice from the
  // remainder).
  apps::SynthImageParams image_params;
  image_params.width = scale.image_size;
  image_params.height = scale.image_size;
  const std::vector<apps::Image> images =
      apps::synthImageSet(scale.image_count, /*seed=*/0xbf1u, image_params);
  const std::size_t train_images = std::max<std::size_t>(1, images.size() / 6);
  const std::span<const apps::Image> train_span{images.data(), train_images};
  const std::span<const apps::Image> test_span{
      images.data() + train_images, images.size() - train_images};

  for (const apps::AppKind app : apps::kAllApps) {
    auto train_streams = apps::profileAppWorkloads(app, train_span);
    auto test_streams = apps::profileAppWorkloads(app, test_span);
    DatasetStreams streams;
    streams.name = train_streams[kind].name;
    streams.train =
        dta::resizeWorkload(train_streams[kind], scale.app_train_cycles);
    streams.test =
        dta::resizeWorkload(test_streams[kind], scale.app_test_cycles);
    datasets.push_back(std::move(streams));
  }
  return datasets;
}

std::vector<DatasetTraces> characterizeAll(
    core::FuContext& context, const std::vector<DatasetStreams>& datasets,
    const BenchScale& scale) {
  std::vector<DatasetTraces> all;
  all.reserve(datasets.size());
  for (const DatasetStreams& dataset : datasets) {
    DatasetTraces traces;
    traces.name = dataset.name;
    for (const liberty::Corner& corner : scale.corners) {
      traces.train.push_back(context.characterize(corner, dataset.train));
      traces.test.push_back(context.characterize(corner, dataset.test));
    }
    all.push_back(std::move(traces));
  }
  return all;
}

std::vector<dta::DtaTrace> pooledTrainingTraces(
    const std::vector<DatasetTraces>& traces) {
  std::vector<dta::DtaTrace> pooled;
  for (const DatasetTraces& dataset : traces) {
    pooled.insert(pooled.end(), dataset.train.begin(), dataset.train.end());
  }
  return pooled;
}

core::EvalOutcome evaluateDataset(core::ErrorModel& model,
                                  const DatasetTraces& traces) {
  std::vector<core::EvalOutcome> outcomes;
  for (std::size_t c = 0; c < traces.test.size(); ++c) {
    const double base_clock = traces.train[c].baseClockPs();
    for (const double speedup : dta::kClockSpeedups) {
      outcomes.push_back(core::evaluateOnTrace(
          model, traces.test[c], dta::speedupClockPs(base_clock, speedup)));
    }
  }
  return core::mergeOutcomes(outcomes);
}

std::string formatPercent(double fraction, int width) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%*.2f%%", width - 1,
                fraction * 100.0);
  return buffer;
}

}  // namespace tevot::bench

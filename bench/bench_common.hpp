// Shared experiment harness for the reproduction benches.
//
// Encapsulates the paper's experimental protocol (Sec. V-A):
//  * per FU: a random training workload plus application workloads
//    profiled from the image filters (training slice = the paper's
//    "5% randomly-picked images", test slice = the rest);
//  * TEVoT / TEVoT-NH trained and Delay-/TER-based calibrated on the
//    *training* traces (random + training-slice app data);
//  * per (condition, dataset): base clock = the dataset's fastest
//    error-free clock (max dynamic delay of its training-side trace),
//    evaluated at 5/10/15% speedups.
//
// Scales are reduced by default so the whole bench suite runs in
// minutes; TEVOT_FULL=1 restores paper-sized sweeps, and the
// TEVOT_* variables below override individual knobs.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/profile.hpp"
#include "apps/synth_images.hpp"
#include "dta/dta.hpp"
#include "tevot/evaluate.hpp"
#include "tevot/operating_grid.hpp"
#include "tevot/pipeline.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace tevot::bench {

struct BenchScale {
  std::vector<liberty::Corner> corners;  ///< evaluation conditions
  std::size_t train_cycles_per_corner;   ///< random training ops/corner
  std::size_t test_cycles_per_corner;    ///< random test ops/corner
  std::size_t app_train_cycles;          ///< app training ops/corner
  std::size_t app_test_cycles;           ///< app test ops/corner
  std::size_t image_count;               ///< synthetic image set size
  int image_size;                        ///< image width == height
  /// Characterization/training parallelism (thread count including
  /// the main thread). Default 1; 0 selects the hardware count.
  std::size_t jobs = 1;

  /// Reads the default or TEVOT_FULL-scaled configuration, then
  /// applies a `--jobs N` command-line flag (also TEVOT_JOBS) when
  /// argv is given.
  static BenchScale fromEnvironment(int argc = 0, char** argv = nullptr);
};

/// Named dataset: a training-side stream (defines base clocks and
/// feeds model training) and a held-out test stream.
struct DatasetStreams {
  std::string name;
  dta::Workload train;
  dta::Workload test;
};

/// Builds the paper's three datasets for one FU: random_data,
/// sobel_data, gauss_data.
std::vector<DatasetStreams> buildDatasets(circuits::FuKind kind,
                                          const BenchScale& scale,
                                          util::Rng& rng);

/// Characterized train/test traces for one dataset across corners.
struct DatasetTraces {
  std::string name;
  std::vector<dta::DtaTrace> train;  ///< one per corner
  std::vector<dta::DtaTrace> test;   ///< one per corner
};

/// Runs DTA for every dataset at every corner, fanning the
/// (dataset x corner x train/test) grid out on `pool`. Traces come
/// back in input order, bit-identical for any thread count.
std::vector<DatasetTraces> characterizeAll(
    core::FuContext& context, const std::vector<DatasetStreams>& datasets,
    const BenchScale& scale, util::ThreadPool& pool);

/// Pools every dataset's training traces (the paper's random + 5%
/// images training set).
std::vector<dta::DtaTrace> pooledTrainingTraces(
    const std::vector<DatasetTraces>& traces);

/// Accuracy of one model on one dataset, averaged over all corners
/// and the three clock speedups, with per-(corner,dataset) base
/// clocks from the dataset's training trace.
core::EvalOutcome evaluateDataset(core::ErrorModel& model,
                                  const DatasetTraces& traces);

/// Prints a right-aligned percentage cell.
std::string formatPercent(double fraction, int width = 8);

/// Writes `<dir>/<bench_name>.json` (dir from TEVOT_BENCH_OUT,
/// default "bench_out") recording wall-clock seconds, the thread
/// count and any extra metrics, so the speedup trajectory stays
/// visible across PRs.
void writeBenchJson(
    const std::string& bench_name, std::size_t jobs, double wall_seconds,
    const std::vector<std::pair<std::string, double>>& metrics = {});

}  // namespace tevot::bench

// Reproduces paper Table II: prediction accuracy, training time and
// testing time of four supervised learning methods (LR, k-NN, SVM,
// RF) on the timing-error classification task.
//
// Expected shape: RF clearly most accurate with cheap inference; LR
// fast but inaccurate (linear boundary cannot capture bit
// interactions); k-NN's testing time dwarfs everything as it scans
// the training set per query; SVM in between on accuracy with heavy
// training. Absolute times are machine-dependent — the paper's 2009
// Xeon measured minutes-to-hours at 200K samples; the ordering is
// what must hold.
//
// The task matches the paper's pipeline: features {V, T, x[t],
// x[t-1]}, label = timing error of the INT MUL unit, one model across
// all operating conditions and mixed random+application workloads at
// a single clock (the pooled median training delay, so both classes
// are well represented — at an error-free base clock every method
// would trivially score the majority-class rate).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;
using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MethodResult {
  std::string name;
  double accuracy;
  double train_seconds;
  double test_seconds;
};

template <typename Fit, typename Predict>
MethodResult runMethod(const std::string& name, const ml::Dataset& train,
                       const ml::Dataset& test, Fit fit, Predict predict) {
  MethodResult result;
  result.name = name;
  auto t0 = Clock::now();
  fit(train);
  result.train_seconds = seconds(t0);
  t0 = Clock::now();
  const std::vector<float> predictions = predict(test.x);
  result.test_seconds = seconds(t0);
  result.accuracy = ml::accuracy(predictions, test.y);
  return result;
}

}  // namespace

int main() {
  const BenchScale scale = BenchScale::fromEnvironment();
  const circuits::FuKind kind = circuits::FuKind::kIntMul;
  util::Rng rng(0x7ab1e2);
  core::FuContext context(kind);

  // Characterize training and test streams across the condition set.
  // As in the paper, one model covers all operating conditions at one
  // circuit clock: the (V,T) features decide the bulk of the
  // classification and the workload bits decide the boundary
  // conditions. The clock is the pooled median training delay.
  // Workloads mix random and application data, as the paper's
  // training set does (200K random + 5% of the images).
  const auto datasets = buildDatasets(kind, scale, rng);
  std::vector<dta::DtaTrace> train_traces, test_traces;
  for (const liberty::Corner& corner : scale.corners) {
    for (const DatasetStreams& dataset : datasets) {
      train_traces.push_back(context.characterize(corner, dataset.train));
      test_traces.push_back(context.characterize(corner, dataset.test));
    }
  }
  std::vector<double> pooled_delays;
  for (const dta::DtaTrace& trace : train_traces) {
    for (const dta::DtaSample& sample : trace.samples) {
      pooled_delays.push_back(sample.delay_ps);
    }
  }
  std::sort(pooled_delays.begin(), pooled_delays.end());
  const double tclk = pooled_delays[pooled_delays.size() / 2];

  const core::FeatureEncoder encoder(true);
  const auto fixed_clock = [&](const dta::DtaTrace&) { return tclk; };
  const ml::Dataset train =
      core::buildErrorDataset(train_traces, encoder, fixed_clock);
  const ml::Dataset test =
      core::buildErrorDataset(test_traces, encoder, fixed_clock);

  double error_rate = 0.0;
  for (const float label : train.y) error_rate += label;
  error_rate /= static_cast<double>(train.size());

  std::printf("=== Table II: accuracy, training and testing time ===\n");
  std::printf(
      "task: %s timing-error classification at one fixed clock across all conditions,\n"
      "%zu train / %zu test samples, %zu features, base error rate "
      "%.2f%%\n\n",
      std::string(circuits::fuName(kind)).c_str(), train.size(),
      test.size(), train.features(), error_rate * 100.0);

  std::vector<MethodResult> results;

  ml::LogisticRegression logreg;
  results.push_back(runMethod(
      "LR", train, test,
      [&](const ml::Dataset& data) { logreg.fit(data); },
      [&](const ml::Matrix& x) { return logreg.predictBatch(x); }));

  ml::KnnClassifier knn(5);
  results.push_back(runMethod(
      "KNN", train, test,
      [&](const ml::Dataset& data) { knn.fit(data); },
      [&](const ml::Matrix& x) { return knn.predictBatch(x); }));

  ml::LinearSvm svm;
  results.push_back(runMethod(
      "SVM", train, test,
      [&](const ml::Dataset& data) {
        ml::LinearParams params;
        params.epochs = 60;  // margin methods need more passes
        svm.fit(data, params);
      },
      [&](const ml::Matrix& x) { return svm.predictBatch(x); }));

  ml::RandomForestClassifier forest;
  results.push_back(runMethod(
      "RFC", train, test,
      [&](const ml::Dataset& data) {
        util::Rng forest_rng(7);
        forest.fit(data, ml::ForestParams{}, forest_rng);
      },
      [&](const ml::Matrix& x) { return forest.predictBatch(x); }));

  std::printf("  %-8s %10s %14s %14s\n", "method", "Accuracy",
              "Training Time", "Testing Time");
  for (const MethodResult& result : results) {
    std::printf("  %-8s %9.1f%% %13.3fs %13.3fs\n", result.name.c_str(),
                result.accuracy * 100.0, result.train_seconds,
                result.test_seconds);
  }

  std::printf(
      "\npaper (200K samples, 2009-era Xeon): LR 82.3%% / KNN 81.7%% / "
      "SVM 92.2%% / RFC 98.3%%; RFC fastest to test after LR.\n");
  return 0;
}

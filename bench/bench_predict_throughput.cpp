// Inference-engine throughput: the scalar CART tree-walk vs the
// compiled ml::FlatForest, scalar and batched, single- and
// multi-threaded, plus end-to-end TevotModel paths (encoding
// included) and tevot_serve predictN batch latency percentiles.
//
// Two outputs:
//  * the usual bench_out/predict_throughput.json (TEVOT_BENCH_OUT),
//  * BENCH_predict_throughput.json in the current directory — run
//    from the repo root so the committed copy tracks the speedup
//    trajectory across PRs (CI uploads it as an artifact).
//
// Knobs:
//   TEVOT_PREDICT_ROWS     distinct encoded rows (default 4096)
//   TEVOT_PREDICT_REPEAT   passes over the row block (default 64)
//   TEVOT_PREDICT_THREADS  thread count for the N-thread runs
//                          (default: hardware concurrency)
//   TEVOT_PREDICT_BATCHES  predictN batches against the server
//                          (default 200, 64 tuples each)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ml/flat_forest.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tevot/model.hpp"
#include "tevot/pipeline.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace tevot;
using Clock = std::chrono::steady_clock;

core::TevotModel trainModel() {
  core::FuContext context(circuits::FuKind::kIntAdd);
  util::Rng rng(7);
  std::vector<dta::DtaTrace> traces;
  for (const liberty::Corner corner :
       {liberty::Corner{0.85, 25.0}, liberty::Corner{1.00, 75.0}}) {
    traces.push_back(context.characterize(
        corner, dta::randomWorkloadFor(context.kind(), 400, rng)));
  }
  core::TevotModel model;
  model.train(traces, rng);
  return model;
}

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Partitions [0, rows) across `threads` workers running `body(lo, hi)`
/// and returns predictions/second over `repeat` passes.
template <typename Body>
double timedRate(std::size_t rows, int repeat, std::size_t threads,
                 const Body& body) {
  const auto start = Clock::now();
  for (int pass = 0; pass < repeat; ++pass) {
    if (threads <= 1) {
      body(0, rows);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      const std::size_t chunk = (rows + threads - 1) / threads;
      for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t lo = std::min(rows, t * chunk);
        const std::size_t hi = std::min(rows, lo + chunk);
        if (lo < hi) pool.emplace_back([&body, lo, hi] { body(lo, hi); });
      }
      for (std::thread& worker : pool) worker.join();
    }
  }
  const double wall = secondsSince(start);
  return static_cast<double>(rows) * repeat / wall;
}

/// Keeps the optimizer from discarding prediction loops.
volatile double g_sink = 0.0;

}  // namespace

int main() {
  const auto rows =
      static_cast<std::size_t>(util::envInt("TEVOT_PREDICT_ROWS", 4096));
  const auto repeat =
      static_cast<int>(util::envInt("TEVOT_PREDICT_REPEAT", 64));
  std::size_t threads =
      static_cast<std::size_t>(util::envInt("TEVOT_PREDICT_THREADS", 0));
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto serve_batches =
      static_cast<int>(util::envInt("TEVOT_PREDICT_BATCHES", 200));

  const auto bench_start = Clock::now();
  const core::TevotModel model = trainModel();
  const ml::RandomForestRegressor& forest = model.forest();
  const ml::FlatForest& flat = model.flatForest();
  std::printf(
      "predict throughput: %zu rows x %d passes, %zu trees, %zu nodes, "
      "max depth %d\n",
      rows, repeat, flat.treeCount(), flat.nodeCount(), flat.maxDepth());

  // Pre-encoded row block: the engine comparison isolates traversal
  // cost; the end-to-end numbers below include encoding.
  util::Rng rng(11);
  const std::size_t cols = model.encoder().featureCount();
  std::vector<float> block(rows * cols);
  std::vector<core::DelayQuery> queries(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    core::DelayQuery& query = queries[i];
    query.a = rng.nextU32();
    query.b = rng.nextU32();
    query.prev_a = rng.nextU32();
    query.prev_b = rng.nextU32();
    query.corner = {rng.nextDouble(0.81, 1.0), rng.nextDouble(0.0, 100.0)};
    model.encoder().encode(query.a, query.b, query.prev_a, query.prev_b,
                           query.corner,
                           std::span<float>(block.data() + i * cols, cols));
  }

  const auto scalar_body = [&](std::size_t lo, std::size_t hi) {
    double sink = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sink += forest.predict(
          std::span<const float>(block.data() + i * cols, cols));
    }
    g_sink = sink;
  };
  const auto flat_scalar_body = [&](std::size_t lo, std::size_t hi) {
    double sink = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sink += flat.predict(
          std::span<const float>(block.data() + i * cols, cols));
    }
    g_sink = sink;
  };
  std::vector<double> batch_out(rows);
  const auto flat_batch_body = [&](std::size_t lo, std::size_t hi) {
    flat.predictBatch(block.data() + lo * cols, hi - lo, cols,
                      batch_out.data() + lo);
  };

  const double scalar_1t = timedRate(rows, repeat, 1, scalar_body);
  const double flat_1t = timedRate(rows, repeat, 1, flat_scalar_body);
  const double batch_1t = timedRate(rows, repeat, 1, flat_batch_body);
  const double scalar_nt = timedRate(rows, repeat, threads, scalar_body);
  const double batch_nt = timedRate(rows, repeat, threads, flat_batch_body);
  std::printf(
      "  engine (pre-encoded rows): scalar %.0f/s, flat %.0f/s, "
      "flat-batch %.0f/s (%.2fx scalar); %zu threads: scalar %.0f/s, "
      "flat-batch %.0f/s\n",
      scalar_1t, flat_1t, batch_1t, batch_1t / scalar_1t, threads,
      scalar_nt, batch_nt);

  // End-to-end model paths, encoding included.
  const auto e2e_scalar_body = [&](std::size_t lo, std::size_t hi) {
    double sink = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const core::DelayQuery& q = queries[i];
      sink += model.predictDelay(q.a, q.b, q.prev_a, q.prev_b, q.corner);
    }
    g_sink = sink;
  };
  const auto e2e_batch_body = [&](std::size_t lo, std::size_t hi) {
    model.predictDelayBatch(
        std::span<const core::DelayQuery>(queries.data() + lo, hi - lo),
        std::span<double>(batch_out.data() + lo, hi - lo));
  };
  const int e2e_repeat = std::max(1, repeat / 4);
  const double e2e_scalar = timedRate(rows, e2e_repeat, 1, e2e_scalar_body);
  const double e2e_batch = timedRate(rows, e2e_repeat, 1, e2e_batch_body);
  std::printf("  end-to-end (with encoding): scalar %.0f/s, batch %.0f/s "
              "(%.2fx)\n",
              e2e_scalar, e2e_batch, e2e_batch / e2e_scalar);

  // Serve-side predictN latency: one client, 64-tuple batches.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tevot_bench_predict_models")
          .string();
  std::filesystem::create_directories(dir);
  model.save(dir + "/int_add.model");
  util::FaultInjector quiet;  // never inherit TEVOT_FAULTS in a bench
  serve::ServerOptions options;
  options.model_dir = dir;
  options.workers = 2;
  options.queue_capacity = 256;
  options.faults = &quiet;
  serve::Server server(options);
  const util::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_predict_throughput: %s\n",
                 started.message.c_str());
    return 1;
  }
  constexpr std::size_t kTuples = 64;
  double serve_batch_rps = 0.0;
  {
    serve::LineClient client;
    if (!client.connectTo(server.port()).ok()) {
      std::fprintf(stderr, "bench_predict_throughput: connect failed\n");
      return 1;
    }
    std::vector<serve::BatchOperand> tuples(kTuples);
    const auto serve_start = Clock::now();
    for (int batch = 0; batch < serve_batches; ++batch) {
      for (serve::BatchOperand& tuple : tuples) {
        tuple = {rng.nextU32(), rng.nextU32(), rng.nextU32(),
                 rng.nextU32()};
      }
      const std::string line = serve::formatBatchRequest(
          "int_add", 0.9, 25.0 + (batch % 50), 300.0, tuples);
      if (!client.sendLine(line)) break;
      for (std::size_t i = 0; i < kTuples; ++i) {
        if (!client.readLine().has_value()) break;
      }
    }
    serve_batch_rps =
        static_cast<double>(serve_batches) * kTuples /
        secondsSince(serve_start);
  }
  const serve::MetricsSnapshot stats = server.drainAndStop();
  std::printf(
      "  serve predictN: %d batches x %zu tuples, %.0f predictions/s, "
      "batch p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
      serve_batches, kTuples, serve_batch_rps, stats.p50_ms, stats.p95_ms,
      stats.p99_ms);

  const double wall = secondsSince(bench_start);
  const std::vector<std::pair<std::string, double>> metrics = {
      {"rows", static_cast<double>(rows)},
      {"repeat", static_cast<double>(repeat)},
      {"threads", static_cast<double>(threads)},
      {"tree_count", static_cast<double>(flat.treeCount())},
      {"node_count", static_cast<double>(flat.nodeCount())},
      {"max_depth", static_cast<double>(flat.maxDepth())},
      {"scalar_predictions_per_s_1t", scalar_1t},
      {"flat_scalar_predictions_per_s_1t", flat_1t},
      {"flat_batch_predictions_per_s_1t", batch_1t},
      {"flat_batch_speedup_vs_scalar_1t", batch_1t / scalar_1t},
      {"scalar_predictions_per_s_nt", scalar_nt},
      {"flat_batch_predictions_per_s_nt", batch_nt},
      {"e2e_scalar_predictions_per_s_1t", e2e_scalar},
      {"e2e_batch_predictions_per_s_1t", e2e_batch},
      {"e2e_batch_speedup_vs_scalar_1t", e2e_batch / e2e_scalar},
      {"serve_batch_predictions_per_s", serve_batch_rps},
      {"serve_batch_p50_ms", stats.p50_ms},
      {"serve_batch_p95_ms", stats.p95_ms},
      {"serve_batch_p99_ms", stats.p99_ms},
  };
  bench::writeBenchJson("predict_throughput", threads, wall, metrics);

  // The committed repo-root copy (run from the repo root).
  std::ofstream os("BENCH_predict_throughput.json");
  if (os) {
    os << "{\n  \"bench\": \"predict_throughput\",\n  \"wall_clock_s\": "
       << wall;
    for (const auto& [key, value] : metrics) {
      os << ",\n  \"" << key << "\": " << value;
    }
    os << "\n}\n";
  }
  return 0;
}

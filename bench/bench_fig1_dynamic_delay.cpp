// Reproduces paper Fig. 1: the dynamic delay of a circuit depends on
// which input transition occurs, not only on its static critical
// path.
//
// The paper's toy circuit: x feeds a 1 ns gate, y a 0.5 ns gate, both
// into a 1 ns output gate. Transition (a): x rises -> the sensitized
// path is 1 + 1 = 2 ns. Transition (b): y rises while the x-side
// output is already set -> the sensitized path is 0.5 + 1 = 1.5 ns.
// We rebuild the circuit with explicit per-gate delays and show the
// event-driven simulator reporting exactly those two dynamic delays,
// plus the same experiment on the real INT ADD where the delay
// spectrum is input-dependent and the static critical path (STA) is
// rarely sensitized.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

}  // namespace

int main() {
  std::printf("=== Fig. 1: input-dependent dynamic delay ===\n\n");

  // Toy circuit: buf_x (1000 ps) and buf_y (500 ps) feeding an XOR
  // (1000 ps), so both transitions of the paper's figure toggle the
  // output through different-length sensitized paths.
  netlist::Netlist nl("fig1");
  const auto x = nl.addInput("x");
  const auto y = nl.addInput("y");
  const auto bx = nl.addGate1(netlist::CellKind::kBuf, x, "bx");
  const auto by = nl.addGate1(netlist::CellKind::kBuf, y, "by");
  const auto out = nl.addGate2(netlist::CellKind::kXor2, bx, by, "o");
  nl.markOutput(out, "o");

  liberty::CornerDelays delays;
  delays.corner = {1.0, 25.0};
  delays.rise_ps = {1000.0, 500.0, 1000.0};  // bx, by, or2
  delays.fall_ps = {1000.0, 500.0, 1000.0};

  sim::TimingSimulator simulator(nl, delays);
  const std::uint8_t init[2] = {0, 0};
  simulator.reset({init, 2});

  const std::uint8_t first[2] = {1, 0};   // x: 0 -> 1
  const auto rec_a = simulator.step({first, 2});
  std::printf("  (b) first input x rises : dynamic delay = %.1f ns "
              "(paper: 2 ns)\n",
              rec_a.dynamic_delay_ps / 1000.0);

  const std::uint8_t second[2] = {1, 1};  // y: 0 -> 1, output 1 -> 0
  const auto rec_b = simulator.step({second, 2});
  std::printf("  (c) second input y rises: dynamic delay = %.1f ns "
              "(paper: 1.5 ns)\n",
              rec_b.dynamic_delay_ps / 1000.0);

  // The same phenomenon on the real INT ADD FU.
  std::printf("\nINT ADD at (0.90 V, 50 C): dynamic delay spectrum vs. "
              "static critical path\n");
  core::FuContext context(circuits::FuKind::kIntAdd);
  const liberty::Corner corner{0.90, 50.0};
  util::Rng rng(0xf161);
  const auto workload =
      dta::randomWorkloadFor(circuits::FuKind::kIntAdd, 2000, rng);
  const auto trace = context.characterize(corner, workload);
  const auto stats = trace.delayStats();
  const double sta_delay = context.staCriticalPathPs(corner);
  std::printf("  STA critical path : %8.1f ps\n", sta_delay);
  std::printf("  dynamic delay     : mean %.1f ps, max %.1f ps, "
              "stddev %.1f ps over %zu cycles\n",
              stats.mean(), stats.max(), stats.stddev(), stats.count());
  std::printf("  max observed / STA: %.2f (the critical path is rarely "
              "sensitized)\n",
              stats.max() / sta_delay);
  return 0;
}

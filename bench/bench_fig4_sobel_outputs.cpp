// Reproduces paper Fig. 4: example Sobel outputs under error
// injection at one operating point near the quality cliff, comparing
// simulation ground truth with the TEVoT, TEVoT-NH and TER-based
// models (Delay-based is omitted, as in the paper, because it always
// corrupts the whole image). Writes the images as PGM files to
// bench_out/ and prints their PSNR vs. the error-free output.
//
// Expected shape: TEVoT's PSNR lands close to ground truth (both
// sides of the 30 dB threshold agree); TER-based and TEVoT-NH land
// far away on workloads whose statistics deviate from training.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench_common.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

constexpr circuits::FuKind kInjectedFus[] = {circuits::FuKind::kIntAdd,
                                             circuits::FuKind::kIntMul};

}  // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::fromEnvironment(argc, argv);
  util::ThreadPool pool(scale.jobs);
  const auto bench_start = std::chrono::steady_clock::now();
  util::Rng rng(0xf164);

  apps::SynthImageParams image_params;
  image_params.width = scale.image_size;
  image_params.height = scale.image_size;
  const auto images = apps::synthImageSet(4, 0xbf1u, image_params);
  const apps::Image& input = images[3];
  const std::span<const apps::Image> train_span{images.data(), 1};

  std::printf("=== Fig. 4: Sobel outputs under error injection ===\n");

  // Characterize the profiled Sobel streams per FU per corner; pick
  // the (corner, speedup) whose combined stream TER is closest to a
  // small target, putting the output image near the 30 dB quality
  // cliff (the regime the paper's example lives in).
  auto app_streams =
      apps::profileAppWorkloads(apps::AppKind::kSobel, train_span);
  struct PerFu {
    std::unique_ptr<core::FuContext> context;
    core::ModelSuite suite;
    std::vector<std::unique_ptr<core::ErrorModel>> models;
    std::map<std::pair<int, int>, dta::DtaTrace> app_trace;
    double tclk = 0.0;
  };
  std::map<circuits::FuKind, PerFu> fus;
  for (const circuits::FuKind kind : kInjectedFus) {
    PerFu per_fu;
    per_fu.context = std::make_unique<core::FuContext>(kind);
    // A richer characterization than the Table III default: the base
    // clock must see the delay tail of the full stream, or the
    // "error-free" clock already errs on the eval image.
    const auto app_wl = dta::resizeWorkload(
        app_streams[kind], 4 * scale.app_train_cycles);
    std::vector<dta::CharacterizeJob> jobs;
    for (const liberty::Corner& corner : scale.corners) {
      jobs.push_back(per_fu.context->characterizeJob(corner, app_wl));
    }
    std::vector<dta::DtaTrace> traces = dta::characterizeAll(jobs, pool);
    for (std::size_t c = 0; c < scale.corners.size(); ++c) {
      per_fu.app_trace.emplace(core::cornerKey(scale.corners[c]),
                               std::move(traces[c]));
    }
    fus.emplace(kind, std::move(per_fu));
  }

  // Candidate speedups are swept finely (this is an illustrative
  // figure, not the Table III protocol): injected errors cascade
  // through the accumulator feedback, so the quality cliff sits at
  // small stream error rates.
  std::vector<double> candidate_speedups;
  for (int half_pct = 1; half_pct <= 30; ++half_pct) {
    candidate_speedups.push_back(half_pct / 200.0);
  }
  liberty::Corner corner{0.81, 100.0};
  double speedup = 0.15;
  double best_score = 1e9;
  constexpr double kTargetTer = 0.00010;  // ~cliff-adjacent error rate
  for (const liberty::Corner& candidate : scale.corners) {
    for (const double s : candidate_speedups) {
      double combined_ter = 0.0;
      for (const circuits::FuKind kind : kInjectedFus) {
        const auto& trace =
            fus.at(kind).app_trace.at(core::cornerKey(candidate));
        combined_ter += trace.timingErrorRate(
            dta::speedupClockPs(trace.baseClockPs(), s));
      }
      const double score = std::abs(combined_ter - kTargetTer);
      if (score < best_score) {
        best_score = score;
        corner = candidate;
        speedup = s;
      }
    }
  }
  std::printf("operating point: %.2f V, %.0f C, %.1f%% clock speedup "
              "(selected for a near-cliff error rate)\n\n",
              corner.voltage, corner.temperature, speedup * 100.0);

  // Train the model suites at the chosen point (as in Table IV).
  for (const circuits::FuKind kind : kInjectedFus) {
    PerFu& per_fu = fus.at(kind);
    std::vector<dta::DtaTrace> train_traces;
    const auto random_wl =
        dta::randomWorkloadFor(kind, scale.train_cycles_per_corner, rng);
    train_traces.push_back(per_fu.context->characterize(corner, random_wl));
    train_traces.push_back(per_fu.app_trace.at(core::cornerKey(corner)));
    per_fu.tclk =
        dta::speedupClockPs(train_traces.back().baseClockPs(), speedup);
    per_fu.suite =
        core::trainModelSuite(train_traces, rng, ml::ForestParams{}, &pool);
    per_fu.models = per_fu.suite.errorModels();
  }

  std::filesystem::create_directories("bench_out");
  apps::ExactExecutor exact;
  const apps::Image reference =
      apps::sobelFilter(input, exact, apps::NumericMode::kInteger);
  apps::writePgm("bench_out/fig4_input.pgm", input);
  apps::writePgm("bench_out/fig4_reference.pgm", reference);

  auto report = [&](const char* label, const apps::Image& image,
                    const char* file) {
    const double psnr = apps::psnrDb(reference, image);
    apps::writePgm(std::string("bench_out/") + file, image);
    std::printf("  %-14s PSNR %6.1f dB  -> %s  (%s)\n", label, psnr,
                psnr >= apps::kAcceptablePsnrDb ? "acceptable"
                                                : "UNACCEPTABLE",
                file);
    return psnr;
  };

  // Ground truth.
  apps::ErrorInjectingExecutor gt_exec(0x41);
  for (const circuits::FuKind kind : kInjectedFus) {
    auto& per_fu = fus.at(kind);
    gt_exec.setOracle(kind, std::make_unique<apps::SimOracle>(
                                per_fu.context->netlist(),
                                per_fu.context->delaysAt(corner),
                                per_fu.tclk,
                                apps::SimOracle::ValueMode::kRandomValue));
  }
  const apps::Image gt = apps::sobelFilter(input, gt_exec,
                                           apps::NumericMode::kInteger);
  std::printf("  [gt injected %zu errors over %zu ops = %.3f%%]\n",
              gt_exec.injectedErrors(), gt_exec.totalOps(),
              100.0 * gt_exec.injectedErrors() / gt_exec.totalOps());
  const double gt_psnr = report("ground truth", gt, "fig4_ground_truth.pgm");

  // Models (Table III column order): 0 TEVoT, 2 TER-based, 3 TEVoT-NH.
  const struct {
    std::size_t index;
    const char* label;
    const char* file;
  } model_rows[] = {
      {0, "TEVoT", "fig4_tevot.pgm"},
      {2, "TER-based", "fig4_ter_based.pgm"},
      {3, "TEVoT-NH", "fig4_tevot_nh.pgm"},
  };
  for (const auto& row : model_rows) {
    apps::ErrorInjectingExecutor exec(0x51 + row.index);
    for (const circuits::FuKind kind : kInjectedFus) {
      auto& per_fu = fus.at(kind);
      exec.setOracle(kind, std::make_unique<apps::ModelOracle>(
                               *per_fu.models[row.index], corner,
                               per_fu.tclk, 0x61 + row.index));
    }
    const apps::Image out =
        apps::sobelFilter(input, exec, apps::NumericMode::kInteger);
    std::printf("  [%s injected %zu errors]\n", row.label,
                exec.injectedErrors());
    report(row.label, out, row.file);
  }

  std::printf(
      "\npaper example: ground truth 27 dB, TEVoT 25 dB (both "
      "unacceptable); TEVoT-NH 56 dB, TER-based 48 dB (wrongly "
      "acceptable). Ground truth here: %.1f dB.\n",
      gt_psnr);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  writeBenchJson("fig4_sobel_outputs", pool.threadCount(), wall,
                 {{"ground_truth_psnr_db", gt_psnr}});
  return 0;
}

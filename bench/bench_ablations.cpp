// Ablation studies for the design choices called out in DESIGN.md:
//
//  A1  Delay regression vs. direct per-clock error classification —
//      the paper's central flexibility argument (Sec. III): one delay
//      model serves all clock speeds; a direct classifier must be
//      retrained per clock but may edge it out at its single clock.
//  A2  History features — accuracy and delay-regression R^2 with and
//      without x[t-1] (model-level view of the TEVoT-NH gap).
//  A3  Forest size — accuracy vs. number of trees (the paper uses the
//      sklearn default of 10).
//  A4  Adder architecture — ripple-carry vs. Kogge-Stone dynamic-
//      delay distributions: the long-tailed ripple spectrum is what
//      makes "critical path rarely sensitized" true for INT ADD.
//  A5  ITD model — with the temperature-dependent threshold voltage
//      removed, the Fig. 3 temperature crossover disappears.
//  A6  Feature importance — the forest's impurity-decrease ranking,
//      backing the paper's RF-interpretability argument: operating-
//      condition features and high-significance operand/toggle bits
//      dominate.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "circuits/int_add.hpp"
#include "circuits/int_mul.hpp"
#include "ml/metrics.hpp"

namespace {

using namespace tevot;
using namespace tevot::bench;

void ablationRegressionVsClassification(const BenchScale& scale) {
  std::printf("A1: delay regression vs direct classification (INT MUL)\n");
  const circuits::FuKind kind = circuits::FuKind::kIntMul;
  util::Rng rng(0xab1a);
  core::FuContext context(kind);
  std::vector<dta::DtaTrace> train, test;
  for (const liberty::Corner& corner : scale.corners) {
    train.push_back(context.characterize(
        corner,
        dta::randomWorkloadFor(kind, scale.train_cycles_per_corner, rng)));
    test.push_back(context.characterize(
        corner,
        dta::randomWorkloadFor(kind, scale.test_cycles_per_corner, rng)));
  }

  // One delay model, evaluated at all three clocks.
  core::TevotModel delay_model;
  delay_model.train(train, rng);
  core::TevotErrorModel delay_view(delay_model);

  const core::FeatureEncoder encoder(true);
  for (const double speedup : dta::kClockSpeedups) {
    // Direct classifier, retrained for this clock.
    auto clock_for = [&](const std::vector<dta::DtaTrace>& traces,
                         const dta::DtaTrace& trace) {
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (&traces[i] == &trace) {
          return dta::speedupClockPs(train[i].baseClockPs(), speedup);
        }
      }
      return 0.0;
    };
    const ml::Dataset train_cls = core::buildErrorDataset(
        train, encoder,
        [&](const dta::DtaTrace& t) { return clock_for(train, t); });
    ml::RandomForestClassifier classifier;
    util::Rng cls_rng(3);
    classifier.fit(train_cls, ml::ForestParams{}, cls_rng);

    // Score both on the test traces.
    std::size_t reg_ok = 0, cls_ok = 0, total = 0;
    std::vector<float> row(encoder.featureCount());
    for (std::size_t c = 0; c < test.size(); ++c) {
      const double tclk =
          dta::speedupClockPs(train[c].baseClockPs(), speedup);
      for (const dta::DtaSample& sample : test[c].samples) {
        const bool truth = sample.timingError(tclk);
        const bool reg = delay_model.predictError(
            sample.a, sample.b, sample.prev_a, sample.prev_b,
            test[c].corner, tclk);
        encoder.encodeSample(sample, test[c].corner, row);
        const bool cls = classifier.predict(row) != 0.0f;
        reg_ok += reg == truth;
        cls_ok += cls == truth;
        ++total;
      }
    }
    std::printf(
        "  speedup %2.0f%%: one delay model %s vs per-clock classifier "
        "%s\n",
        speedup * 100.0,
        formatPercent(static_cast<double>(reg_ok) / total, 8).c_str(),
        formatPercent(static_cast<double>(cls_ok) / total, 8).c_str());
  }
  std::printf("  (the delay model was trained ONCE; each classifier "
              "column required a retrain)\n\n");
}

void ablationHistoryAndForestSize(const BenchScale& scale) {
  // FP MUL on the sobel application stream: history matters most on
  // correlated workloads whose statistics deviate from the random
  // training bulk (on purely random data both variants match — see
  // Table III's random_data column).
  const circuits::FuKind kind = circuits::FuKind::kFpMul;
  util::Rng rng(0xab1b);
  core::FuContext context(kind);
  const auto datasets = buildDatasets(kind, scale, rng);
  std::vector<dta::DtaTrace> train, test;
  std::vector<double> base_clocks;  // aligned with `test`
  for (const liberty::Corner& corner : scale.corners) {
    for (const DatasetStreams& dataset : datasets) {
      train.push_back(context.characterize(corner, dataset.train));
      if (dataset.name == "sobel_data") {
        test.push_back(context.characterize(corner, dataset.test));
        base_clocks.push_back(train.back().baseClockPs());
      }
    }
  }
  auto scoreModel = [&](const core::TevotModel& model, double& r2_out) {
    std::vector<float> predicted, truth;
    std::size_t matched = 0, total = 0;
    for (std::size_t c = 0; c < test.size(); ++c) {
      const double base = base_clocks[c];
      for (const dta::DtaSample& sample : test[c].samples) {
        predicted.push_back(static_cast<float>(
            model.predictDelay(sample.a, sample.b, sample.prev_a,
                               sample.prev_b, test[c].corner)));
        truth.push_back(static_cast<float>(sample.delay_ps));
        for (const double speedup : dta::kClockSpeedups) {
          const double tclk = dta::speedupClockPs(base, speedup);
          matched += (predicted.back() > tclk) == sample.timingError(tclk);
          ++total;
        }
      }
    }
    r2_out = ml::r2Score(predicted, truth);
    return static_cast<double>(matched) / static_cast<double>(total);
  };

  std::printf("A2: history features (FP MUL, sobel data)\n");
  for (const bool history : {true, false}) {
    core::TevotConfig config;
    config.include_history = history;
    core::TevotModel model(config);
    util::Rng train_rng(5);
    model.train(train, train_rng);
    double r2 = 0.0;
    const double accuracy = scoreModel(model, r2);
    std::printf("  %-12s accuracy %s  delay R^2 %6.3f\n",
                history ? "with x[t-1]" : "no history",
                formatPercent(accuracy, 8).c_str(), r2);
  }
  std::printf("\nA3: forest size (FP MUL, sobel data)\n");
  for (const int trees : {1, 5, 10, 20, 40}) {
    core::TevotConfig config;
    config.forest.n_trees = trees;
    core::TevotModel model(config);
    util::Rng train_rng(6);
    model.train(train, train_rng);
    double r2 = 0.0;
    const double accuracy = scoreModel(model, r2);
    std::printf("  %2d trees: accuracy %s  delay R^2 %6.3f\n", trees,
                formatPercent(accuracy, 8).c_str(), r2);
  }
  std::printf("\n");
}

void ablationAdderArchitecture(const BenchScale& scale) {
  std::printf("A4: datapath architecture delay spectra (0.90 V, 50 C)\n");
  const liberty::Corner corner{0.90, 50.0};
  const auto library = liberty::CellLibrary::defaultLibrary();
  const liberty::VtModel vt;
  auto report = [&](const char* label, const netlist::Netlist& nl) {
    const auto delays = liberty::annotateCorner(nl, library, vt, corner);
    util::Rng rng(0xab1c);
    const auto workload = dta::randomWorkloadFor(
        circuits::FuKind::kIntAdd, scale.train_cycles_per_corner, rng);
    const auto trace = dta::characterize(nl, delays, workload);
    const auto stats = trace.delayStats();
    std::printf(
        "  %-12s gates %5zu  mean %7.1f ps  max %7.1f ps  mean/max "
        "%.2f  TER@15%%-speedup %s\n",
        label, nl.gateCount(), stats.mean(), stats.max(),
        stats.mean() / stats.max(),
        formatPercent(trace.timingErrorRate(
                          dta::speedupClockPs(stats.max(), 0.15)),
                      8)
            .c_str());
  };
  report("ripple",
         circuits::buildIntAdd(32, circuits::AdderArch::kRipple));
  report("carry-select",
         circuits::buildIntAdd(32, circuits::AdderArch::kCarrySelect));
  report("kogge-stone",
         circuits::buildIntAdd(32, circuits::AdderArch::kKoggeStone));
  report("mul array",
         circuits::buildIntMul(32, circuits::MulArch::kCarrySaveArray));
  report("mul booth",
         circuits::buildIntMul(32, circuits::MulArch::kBooth));
  std::printf("  (ripple: long thin tail -> critical path rarely "
              "sensitized, as the paper assumes)\n\n");
}

void ablationItdModel() {
  std::printf("A5: inverse temperature dependence ablation\n");
  liberty::VtParams with_itd;       // default: dVth/dT < 0
  liberty::VtParams without_itd = with_itd;
  without_itd.dvth_dt = 0.0;        // threshold no longer tracks T
  for (const auto& [label, params] :
       {std::pair{"with ITD", with_itd}, {"no dVth/dT", without_itd}}) {
    const liberty::VtModel model(params);
    const double low_cold = model.scale(0.81, 0.0);
    const double low_hot = model.scale(0.81, 100.0);
    const double high_cold = model.scale(1.00, 0.0);
    const double high_hot = model.scale(1.00, 100.0);
    std::printf(
        "  %-10s 0.81V: 0C %.3f -> 100C %.3f (%s)   1.00V: 0C %.3f -> "
        "100C %.3f (slower)\n",
        label, low_cold, low_hot,
        low_hot < low_cold ? "FASTER: crossover exists" : "slower: no ITD",
        high_cold, high_hot);
  }
}

}  // namespace

void ablationFeatureImportance(const BenchScale& scale) {
  std::printf("\nA6: TEVoT feature importance (INT ADD, random data)\n");
  const circuits::FuKind kind = circuits::FuKind::kIntAdd;
  util::Rng rng(0xab1d);
  core::FuContext context(kind);
  std::vector<dta::DtaTrace> traces;
  for (const liberty::Corner& corner : scale.corners) {
    traces.push_back(context.characterize(
        corner,
        dta::randomWorkloadFor(kind, scale.train_cycles_per_corner, rng)));
  }
  core::TevotModel model;
  model.train(traces, rng);
  const std::vector<double> importance = model.featureImportance();
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });
  std::printf("  top 10 of %zu features by impurity decrease:\n",
              importance.size());
  for (int rank = 0; rank < 10; ++rank) {
    const std::size_t f = order[static_cast<std::size_t>(rank)];
    std::printf("    %2d. %-10s %6.2f%%\n", rank + 1,
                model.encoder().featureName(f).c_str(),
                100.0 * importance[f]);
  }
  double condition_share = 0.0;
  condition_share += importance[importance.size() - 1];
  condition_share += importance[importance.size() - 2];
  std::printf("  operating-condition (V,T) share: %.1f%%\n",
              100.0 * condition_share);
}

int main() {
  const BenchScale scale = BenchScale::fromEnvironment();
  std::printf("=== Ablation benches (DESIGN.md Sec. 5) ===\n\n");
  ablationRegressionVsClassification(scale);
  ablationHistoryAndForestSize(scale);
  ablationAdderArchitecture(scale);
  ablationItdModel();
  ablationFeatureImportance(scale);
  return 0;
}

// End-to-end serving latency: boots an in-process tevot_serve Server
// on a freshly trained int_add model and drives it from concurrent
// line clients, reporting request percentiles (p50/p95/p99) from the
// server's own streaming histogram plus client-side wall clock. Knobs:
//   TEVOT_SERVE_CLIENTS   concurrent client connections (default 4)
//   TEVOT_SERVE_REQUESTS  requests per client (default 2000)
//   TEVOT_SERVE_WORKERS   server worker threads (default 2)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "tevot/model.hpp"
#include "tevot/pipeline.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace tevot;

core::TevotModel trainTinyModel() {
  core::FuContext context(circuits::FuKind::kIntAdd);
  util::Rng rng(7);
  std::vector<dta::DtaTrace> traces;
  for (const liberty::Corner corner :
       {liberty::Corner{0.85, 25.0}, liberty::Corner{1.00, 75.0}}) {
    traces.push_back(context.characterize(
        corner, dta::randomWorkloadFor(context.kind(), 200, rng)));
  }
  core::TevotConfig config;
  config.forest.n_trees = 8;
  core::TevotModel model(config);
  model.train(traces, rng);
  return model;
}

}  // namespace

int main() {
  const auto clients =
      static_cast<int>(util::envInt("TEVOT_SERVE_CLIENTS", 4));
  const auto requests =
      static_cast<int>(util::envInt("TEVOT_SERVE_REQUESTS", 2000));
  const auto workers =
      static_cast<std::size_t>(util::envInt("TEVOT_SERVE_WORKERS", 2));

  const std::string dir = "bench_serve_models";
  std::filesystem::create_directories(dir);
  trainTinyModel().save(dir + "/int_add.model");

  util::FaultInjector quiet;  // never inherit TEVOT_FAULTS in a bench
  serve::ServerOptions options;
  options.model_dir = dir;
  options.workers = workers;
  options.queue_capacity = 256;
  options.faults = &quiet;
  serve::Server server(options);
  const util::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_serve_latency: %s\n",
                 started.message.c_str());
    return 1;
  }

  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::LineClient client;
      if (!client.connectTo(server.port()).ok()) return;
      char line[192];
      for (int i = 0; i < requests; ++i) {
        std::snprintf(line, sizeof(line),
                      "predict int_add %a %a %a %u %u %u %u",
                      0.8 + 0.001 * (i % 200), 10.0 + c, 300.0,
                      static_cast<unsigned>(i * 2654435761u),
                      static_cast<unsigned>(~i), static_cast<unsigned>(i),
                      static_cast<unsigned>(c));
        if (!client.sendLine(line)) return;
        if (!client.readLine().has_value()) return;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  const serve::MetricsSnapshot stats = server.drainAndStop();
  const double total = static_cast<double>(clients) * requests;
  std::printf(
      "serve latency: %d clients x %d requests, %zu workers\n"
      "  throughput %.0f req/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, "
      "max %.3f ms\n",
      clients, requests, workers, total / wall, stats.p50_ms, stats.p95_ms,
      stats.p99_ms, stats.max_ms);

  bench::writeBenchJson("serve_latency", workers, wall,
                        {{"clients", static_cast<double>(clients)},
                         {"requests_per_client",
                          static_cast<double>(requests)},
                         {"throughput_rps", total / wall},
                         {"p50_ms", stats.p50_ms},
                         {"p95_ms", stats.p95_ms},
                         {"p99_ms", stats.p99_ms},
                         {"max_ms", stats.max_ms}});
  return 0;
}

// tevot_serve — resilient TEVoT prediction server.
//
//   tevot_serve --model-dir DIR [--port P] [--workers N] [--queue N]
//               [--max-conns N] [--deadline-ms MS] [--drain-ms MS]
//               [--breaker-failures N] [--breaker-cooldown-ms MS]
//
// Serves the newline-delimited protocol of src/serve/protocol.hpp on
// 127.0.0.1 (port 0 = ephemeral; the bound port is printed on stdout
// as "tevot_serve listening on 127.0.0.1:<port>" so scripts can parse
// it). DIR holds one "<fu>.model" file per served functional unit, as
// written by `tevot_cli train`.
//
// Signals:
//   SIGHUP          hot reload (validate-then-swap; failure keeps the
//                   previous models serving) — also available as the
//                   in-band `reload` request
//   SIGTERM/SIGINT  graceful drain: stop accepting, finish or shed
//                   queued work within --drain-ms, print final stats
//                   to stderr, exit 0
//
// TEVOT_FAULTS arms the serve.accept / serve.parse / serve.predict /
// serve.reload fault-injection points (util/fault_injection.hpp) for
// resilience testing; degraded behavior stays within the typed
// response taxonomy.
//
// Exit codes: 0 clean drain, 1 runtime failure (bad model dir, bind
// failure), 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/fault_injection.hpp"
#include "util/signal.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tevot_serve --model-dir DIR [--port P] [--workers N]\n"
      "                   [--queue N] [--max-conns N] [--deadline-ms MS]\n"
      "                   [--drain-ms MS] [--breaker-failures N]\n"
      "                   [--breaker-cooldown-ms MS] [--strict-verify]\n"
      "DIR: one <fu>.model per served unit (from `tevot_cli train`)\n"
      "--strict-verify: refuse models that fail interval certification\n"
      "  (tevot_cli verify-model) at load and at every reload\n"
      "SIGHUP reloads models; SIGTERM/SIGINT drains and exits 0\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tevot;

  serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tevot_serve: %s needs a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--model-dir") {
      if ((v = value()) == nullptr) return usage();
      options.model_dir = v;
    } else if (arg == "--port") {
      if ((v = value()) == nullptr) return usage();
      options.port = static_cast<int>(std::atol(v));
      if (options.port < 0 || options.port > 65535) return usage();
    } else if (arg == "--workers") {
      if ((v = value()) == nullptr) return usage();
      options.workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--queue") {
      if ((v = value()) == nullptr) return usage();
      options.queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--max-conns") {
      if ((v = value()) == nullptr) return usage();
      options.max_connections = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--deadline-ms") {
      if ((v = value()) == nullptr) return usage();
      options.default_deadline_ms = std::atof(v);
    } else if (arg == "--drain-ms") {
      if ((v = value()) == nullptr) return usage();
      options.drain_deadline_ms = std::atof(v);
    } else if (arg == "--breaker-failures") {
      if ((v = value()) == nullptr) return usage();
      options.breaker.failure_threshold = static_cast<int>(std::atol(v));
    } else if (arg == "--breaker-cooldown-ms") {
      if ((v = value()) == nullptr) return usage();
      options.breaker.cooldown_ms = std::atof(v);
    } else if (arg == "--strict-verify") {
      options.strict_verify = true;
    } else {
      std::fprintf(stderr, "tevot_serve: unknown option %s\n",
                   arg.c_str());
      return usage();
    }
  }
  if (options.model_dir.empty()) return usage();

  util::ignoreSigpipe();
  // Installed before start() so no signal window exists where a
  // supervisor's SIGTERM would take the default (abrupt) disposition.
  util::SignalFlag terminate{SIGTERM, SIGINT};
  util::SignalFlag reload_signal{SIGHUP};

  if (util::FaultInjector::global().armed()) {
    std::fprintf(stderr, "tevot_serve: faults armed: %s\n",
                 util::FaultInjector::global().plan().spec().c_str());
  }

  serve::Server server(options);
  const util::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "tevot_serve: %s\n", started.message.c_str());
    return 1;
  }
  std::printf("tevot_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  while (!terminate.raised()) {
    if (reload_signal.consume()) {
      // Outcome (including a failed validation keeping the old
      // models) is logged by the server; nothing to do here.
      (void)server.reload();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "tevot_serve: signal %d, draining\n",
               terminate.lastSignal());
  const serve::MetricsSnapshot final_stats = server.drainAndStop();
  std::fprintf(stderr, "tevot_serve: final stats: %s\n",
               final_stats.toLine().c_str());
  return 0;
}

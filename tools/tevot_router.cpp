// tevot_router — front router + supervisor of a tevot_serve fleet.
//
//   tevot_router --model-dir DIR --serve-binary PATH [--port P]
//                [--shards N] [--policy replicated|per-fu]
//                [--fus "a,b;c;d"] [--workers N] [--queue N]
//                [--deadline-ms MS] [--max-restarts N]
//                [--shed-queue-fraction F] [--health-interval-ms MS]
//
// Spawns N tevot_serve worker shards on ephemeral loopback ports and
// serves the exact tevot_serve newline protocol on the front port
// (0 = ephemeral), fanning requests out per src/fleet/router.hpp.
// Announcements on stdout, one line each, for scripts to parse:
//   tevot_router shard <i> pid <pid> port <port>   (per (re)spawn)
//   tevot_router listening on 127.0.0.1:<port>
//
// --fus assigns FU ownership under per-fu policy: shard lists are
// ';'-separated, FU names within a shard ','-separated.
//
// Signals:
//   SIGHUP          rolling zero-downtime reload, one shard at a time
//                   (also available as the in-band `reload` request)
//   SIGTERM/SIGINT  graceful drain: drain the router, SIGTERM the
//                   workers, print final stats to stderr, exit 0
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/router.hpp"
#include "fleet/supervisor.hpp"
#include "util/signal.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tevot_router --model-dir DIR --serve-binary PATH\n"
      "                    [--port P] [--shards N]\n"
      "                    [--policy replicated|per-fu] [--fus LISTS]\n"
      "                    [--workers N] [--queue N] [--deadline-ms MS]\n"
      "                    [--max-restarts N] [--shed-queue-fraction F]\n"
      "                    [--health-interval-ms MS]\n"
      "LISTS: per-fu shard ownership, e.g. \"int_add,int_mul;alu\"\n"
      "SIGHUP rolls a reload across the fleet; SIGTERM/SIGINT drains\n");
  return 2;
}

/// "a,b;c" -> {{"a","b"},{"c"}}; empty segments allowed.
std::vector<std::vector<std::string>> parseFuLists(const std::string& text) {
  std::vector<std::vector<std::string>> lists(1);
  std::string current;
  for (const char c : text + ";") {
    if (c == ',' || c == ';') {
      if (!current.empty()) lists.back().push_back(current);
      current.clear();
      if (c == ';') lists.emplace_back();
    } else {
      current.push_back(c);
    }
  }
  while (!lists.empty() && lists.back().empty()) lists.pop_back();
  return lists;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tevot;

  fleet::SupervisorOptions supervisor_options;
  fleet::RouterOptions router_options;
  std::string fus_text;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tevot_router: %s needs a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--model-dir") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.model_dir = v;
    } else if (arg == "--serve-binary") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.serve_binary = v;
    } else if (arg == "--port") {
      if ((v = value()) == nullptr) return usage();
      router_options.port = static_cast<int>(std::atol(v));
      if (router_options.port < 0 || router_options.port > 65535) {
        return usage();
      }
    } else if (arg == "--shards") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.shards = static_cast<std::size_t>(std::atol(v));
      if (supervisor_options.shards == 0) return usage();
    } else if (arg == "--policy") {
      if ((v = value()) == nullptr) return usage();
      if (!fleet::parseShardPolicy(v, &router_options.policy)) {
        return usage();
      }
    } else if (arg == "--fus") {
      if ((v = value()) == nullptr) return usage();
      fus_text = v;
    } else if (arg == "--workers") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.worker_threads =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--queue") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.queue_capacity =
          static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--deadline-ms") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.default_deadline_ms = std::atof(v);
    } else if (arg == "--max-restarts") {
      if ((v = value()) == nullptr) return usage();
      supervisor_options.max_restarts = static_cast<int>(std::atol(v));
    } else if (arg == "--shed-queue-fraction") {
      if ((v = value()) == nullptr) return usage();
      router_options.shed_queue_fraction = std::atof(v);
    } else if (arg == "--health-interval-ms") {
      if ((v = value()) == nullptr) return usage();
      router_options.health_interval_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "tevot_router: unknown option %s\n",
                   arg.c_str());
      return usage();
    }
  }
  if (supervisor_options.model_dir.empty() ||
      supervisor_options.serve_binary.empty()) {
    return usage();
  }
  if (!fus_text.empty()) {
    supervisor_options.fus = parseFuLists(fus_text);
    if (supervisor_options.fus.size() > supervisor_options.shards) {
      std::fprintf(stderr,
                   "tevot_router: --fus lists %zu shards, --shards is %zu\n",
                   supervisor_options.fus.size(), supervisor_options.shards);
      return usage();
    }
  }

  util::ignoreSigpipe();
  util::SignalFlag terminate{SIGTERM, SIGINT};
  util::SignalFlag reload_signal{SIGHUP};

  supervisor_options.on_spawn = [](std::size_t shard, pid_t pid, int port) {
    std::printf("tevot_router shard %zu pid %d port %d\n", shard,
                static_cast<int>(pid), port);
    std::fflush(stdout);
  };

  fleet::Supervisor supervisor(supervisor_options);
  util::Status status = supervisor.startAll();
  if (!status.ok()) {
    std::fprintf(stderr, "tevot_router: %s\n", status.message.c_str());
    return 1;
  }

  fleet::Router router(router_options, supervisor.endpoints());
  supervisor.attachRouter(&router);
  status = router.start();
  if (!status.ok()) {
    std::fprintf(stderr, "tevot_router: %s\n", status.message.c_str());
    supervisor.stopAll();
    return 1;
  }
  std::printf("tevot_router listening on 127.0.0.1:%d\n", router.port());
  std::fflush(stdout);

  while (!terminate.raised()) {
    supervisor.poll();
    if (reload_signal.consume()) {
      const util::Status rolled = router.rollingReload();
      if (!rolled.ok()) {
        std::fprintf(stderr, "tevot_router: rolling reload failed: %s\n",
                     rolled.message.c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "tevot_router: signal %d, draining\n",
               terminate.lastSignal());
  const serve::MetricsSnapshot router_stats = router.drainAndStop();
  const serve::MetricsSnapshot worker_stats = router.workerStats();
  supervisor.stopAll();
  std::fprintf(stderr, "tevot_router: final stats: %s\n",
               router_stats.toLine().c_str());
  std::fprintf(stderr, "tevot_router: worker stats: %s\n",
               worker_stats.toLine().c_str());
  return 0;
}

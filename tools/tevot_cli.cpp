// tevot_cli — command-line driver for the library's main flows, so
// the characterization/training pipeline can be scripted without
// writing C++.
//
//   tevot_cli fu-list
//   tevot_cli export-verilog <fu> <file.v>
//   tevot_cli export-lib <file.lib>
//   tevot_cli sdf <fu> <V> <T> <file.sdf>
//   tevot_cli sta <fu> <V> <T>
//   tevot_cli characterize <fu> <V> <T> <cycles> [csv-file]
//   tevot_cli train <fu> <model-file> [cycles-per-corner]
//   tevot_cli predict <model-file> <V> <T> <a> <b> <prev_a> <prev_b>
//                     [tclk_ps]
//   tevot_cli check [n-seeds] [--seed S]
//   tevot_cli sweep <fu> <cycles-per-corner> [--out DIR] [--grid NVxNT]
//             [--seed S] [--resume] [--max-retries N] [--backoff-ms MS]
//             [--job-deadline MS] [--fail-fast] [--report FILE]
//   tevot_cli lint <fu>|--all [--grid NVxNT] [--budget PS]
//             [--waivers FILE] [--sdf FILE] [--json FILE]
//   tevot_cli serve-check <port> <model-file> <fu> [--clients N]
//             [--requests N] [--seed S]
//
// FU names: int_add, int_mul, fp_add, fp_mul. Numeric operands accept
// 0x-prefixed hex. `train` uses the Fig. 3 3x3 corner subset with
// random workloads; `predict` prints the predicted dynamic delay and,
// if a clock period is given, the error classification. `check` runs
// every differential oracle (src/check/) over n-seeds seeds (default
// 25) starting at S (default 1) and exits nonzero on the first
// violation, printing the exact seed so
// `tevot_cli check 1 --seed S` reproduces it.
//
// `lint` runs the static analyzer (src/lint/) over a generated FU (or
// all of them with --all): structural netlist rules, cross-artifact
// Liberty/SDF consistency rules over the --grid corners (the SDF side
// is a write->parse round trip of the netlist's own annotation unless
// --sdf supplies an external file), and static-timing reports. A
// --waivers file suppresses reviewed findings; --json writes the
// machine-readable report ("-" for stdout). Exit 3 when any un-waived
// error-severity finding remains, 0 when the design is clean or fully
// waived.
//
// `sweep` runs the resilient corner-sweep engine (dta::runSweep) over
// an NVxNT (V,T) grid: failing corners are recorded in the sweep
// report instead of killing the run, each completed corner is
// checkpointed atomically into --out, and --resume restores completed
// corners from disk. The TEVOT_FAULTS environment spec arms
// deterministic fault injection (see util/fault_injection.hpp).
// SIGINT/SIGTERM stop a sweep cooperatively: the in-flight corner
// finishes and flushes its checkpoint, the report is printed, and the
// process exits 130 — a subsequent --resume run picks up cleanly.
//
// `serve-check` drives a running tevot_serve instance on
// 127.0.0.1:<port> with concurrent clients (including malformed
// lines) and verifies the serving resilience contract against the
// offline model file: exactly one well-formed response per request,
// and OK answers bit-identical to local prediction. Exit 3 on any
// contract violation — this is the CI serve smoke check.
//
// The global `--jobs N` option (or TEVOT_JOBS) sets the worker count
// for the parallel commands (`train`, `sweep`); N=0 means one job per
// hardware thread. Results are bit-identical for every N.
//
// Exit codes: 0 success, 1 runtime failure (I/O error, failed sweep
// jobs), 2 usage error, 3 check/oracle violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cerrno>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/env.hpp"
#include "util/fault_injection.hpp"
#include "util/signal.hpp"
#include "util/thread_pool.hpp"

#include "check/dvfs_oracle.hpp"
#include "check/flat_oracle.hpp"
#include "check/fleet_oracle.hpp"
#include "check/oracles.hpp"
#include "check/property.hpp"
#include "check/serve_oracle.hpp"
#include "check/sweep_oracle.hpp"
#include "check/verify_oracle.hpp"
#include "dta/sweep.hpp"
#include "liberty/lib_format.hpp"
#include "lint/rules.hpp"
#include "lint/waiver.hpp"
#include "netlist/verilog.hpp"
#include "sdf/sdf.hpp"
#include "tevot/operating_grid.hpp"
#include "tevot/pipeline.hpp"
#include "verify/model_rules.hpp"

namespace {

using namespace tevot;

// Exit-code taxonomy, so scripts and CI can tell a misspelled command
// from a crashed run from a failed oracle.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitCheckFailed = 3;
constexpr int kExitInterrupted = 130;  // 128 + SIGINT, shell convention

int usage() {
  std::fprintf(stderr,
               "usage: tevot_cli [--jobs N] <command> [args]\n"
               "  fu-list\n"
               "  export-verilog <fu> <file.v>\n"
               "  export-lib <file.lib>\n"
               "  sdf <fu> <V> <T> <file.sdf>\n"
               "  sta <fu> <V> <T>\n"
               "  characterize <fu> <V> <T> <cycles> [csv-file]\n"
               "  train <fu> <model-file> [cycles-per-corner]\n"
               "  predict <model-file> <V> <T> <a> <b> <prev_a> <prev_b> "
               "[tclk_ps]\n"
               "  check [n-seeds] [--seed S]\n"
               "  sweep <fu> <cycles-per-corner> [--out DIR] [--grid NVxNT]\n"
               "        [--seed S] [--resume] [--max-retries N] "
               "[--backoff-ms MS]\n"
               "        [--job-deadline MS] [--fail-fast] [--report FILE]\n"
               "  lint <fu>|--all [--grid NVxNT] [--budget PS] "
               "[--waivers FILE]\n"
               "       [--sdf FILE] [--json FILE]\n"
               "  verify-model <model-file> [--grid NVxNT] [--tclk PS]\n"
               "               [--refine-budget N] [--waivers FILE]\n"
               "               [--json FILE] [--cert FILE]\n"
               "  serve-check <port> <model-file> <fu> [--clients N] "
               "[--requests N]\n"
               "              [--seed S]\n"
               "fu: int_add | int_mul | fp_add | fp_mul\n"
               "--jobs N: worker threads for parallel commands "
               "(0 = hardware threads)\n"
               "exit codes: 0 ok, 1 runtime failure, 2 usage, "
               "3 check failure,\n"
               "            130 sweep interrupted by SIGINT/SIGTERM\n");
  return kExitUsage;
}

bool fuFromName(const std::string& name, circuits::FuKind& kind) {
  if (name == "int_add") kind = circuits::FuKind::kIntAdd;
  else if (name == "int_mul") kind = circuits::FuKind::kIntMul;
  else if (name == "fp_add") kind = circuits::FuKind::kFpAdd;
  else if (name == "fp_mul") kind = circuits::FuKind::kFpMul;
  else return false;
  return true;
}

std::uint32_t parseWord(const char* text) {
  return static_cast<std::uint32_t>(std::strtoul(text, nullptr, 0));
}

int cmdFuList() {
  std::printf("%-8s %8s %8s %7s\n", "fu", "gates", "nets", "depth");
  for (const circuits::FuKind kind : circuits::kAllFus) {
    const netlist::Netlist nl = circuits::buildFu(kind);
    std::printf("%-8s %8zu %8zu %7d\n",
                std::string(circuits::fuName(kind)).c_str(),
                nl.gateCount(), nl.netCount(), nl.depth());
  }
  return 0;
}

int cmdExportVerilog(const std::string& fu, const std::string& path) {
  circuits::FuKind kind;
  if (!fuFromName(fu, kind)) return usage();
  netlist::writeVerilogFile(path, circuits::buildFu(kind));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmdExportLib(const std::string& path) {
  liberty::LibertyLibrary library;
  library.cells = liberty::CellLibrary::defaultLibrary();
  liberty::writeLibertyFile(path, library);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmdSdf(const std::string& fu, double v, double t,
           const std::string& path) {
  circuits::FuKind kind;
  if (!fuFromName(fu, kind)) return usage();
  core::FuContext context(kind);
  sdf::writeSdfFile(path, context.netlist(),
                    context.delaysAt({v, t}));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmdSta(const std::string& fu, double v, double t) {
  circuits::FuKind kind;
  if (!fuFromName(fu, kind)) return usage();
  core::FuContext context(kind);
  std::printf("%s @ (%.2f V, %.0f C): critical path %.1f ps\n",
              std::string(circuits::fuName(kind)).c_str(), v, t,
              context.staCriticalPathPs({v, t}));
  return 0;
}

int cmdCharacterize(const std::string& fu, double v, double t,
                    long cycles, const char* csv_path) {
  circuits::FuKind kind;
  if (!fuFromName(fu, kind)) return usage();
  core::FuContext context(kind);
  util::Rng rng(1);
  const auto workload = dta::randomWorkloadFor(
      kind, static_cast<std::size_t>(cycles), rng);
  const dta::DtaTrace trace = context.characterize({v, t}, workload);
  const auto stats = trace.delayStats();
  std::printf("%s @ (%.2f V, %.0f C), %zu cycles:\n",
              std::string(circuits::fuName(kind)).c_str(), v, t,
              trace.samples.size());
  std::printf("  dynamic delay: mean %.1f ps, stddev %.1f ps, max %.1f "
              "ps\n",
              stats.mean(), stats.stddev(), stats.max());
  for (const double speedup : dta::kClockSpeedups) {
    const double tclk = dta::speedupClockPs(trace.baseClockPs(), speedup);
    std::printf("  TER @ +%2.0f%% speedup (%.1f ps): %.3f%%\n",
                speedup * 100.0, tclk,
                100.0 * trace.timingErrorRate(tclk));
  }
  if (csv_path != nullptr) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot open %s: %s\n", csv_path,
                   std::strerror(errno));
      return kExitRuntime;
    }
    csv << "cycle,a,b,prev_a,prev_b,delay_ps\n";
    for (std::size_t i = 0; i < trace.samples.size(); ++i) {
      const dta::DtaSample& sample = trace.samples[i];
      csv << i << ',' << sample.a << ',' << sample.b << ','
          << sample.prev_a << ',' << sample.prev_b << ','
          << sample.delay_ps << '\n';
    }
    std::printf("  wrote %s\n", csv_path);
  }
  return 0;
}

int cmdTrain(const std::string& fu, const std::string& model_path,
             long cycles, util::ThreadPool& pool) {
  circuits::FuKind kind;
  if (!fuFromName(fu, kind)) return usage();
  core::FuContext context(kind);
  util::Rng rng(7);
  // Draw every workload sequentially first, so the training data is
  // identical for any --jobs value, then characterize on the pool.
  const auto corners = core::OperatingGrid::paper().subsampled(3, 3);
  std::vector<dta::Workload> workloads;
  std::vector<dta::CharacterizeJob> jobs;
  workloads.reserve(corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    workloads.push_back(dta::randomWorkloadFor(
        kind, static_cast<std::size_t>(cycles), rng));
  }
  for (std::size_t c = 0; c < corners.size(); ++c) {
    jobs.push_back(context.characterizeJob(corners[c], workloads[c]));
  }
  std::vector<dta::DtaTrace> traces = dta::characterizeAll(jobs, pool);
  for (std::size_t c = 0; c < corners.size(); ++c) {
    std::printf("characterized (%.2f V, %3.0f C): mean %.1f ps\n",
                corners[c].voltage, corners[c].temperature,
                traces[c].meanDelayPs());
  }
  core::TevotModel model;
  model.train(traces, rng, &pool);
  model.save(model_path);
  std::printf("trained on %zu corners x %ld cycles (jobs=%zu); saved %s\n",
              traces.size(), cycles, pool.threadCount(),
              model_path.c_str());
  return 0;
}

int cmdPredict(const std::string& model_path, double v, double t,
               std::uint32_t a, std::uint32_t b, std::uint32_t prev_a,
               std::uint32_t prev_b, const char* tclk_text) {
  const core::TevotModel model = core::TevotModel::load(model_path);
  const double delay =
      model.predictDelay(a, b, prev_a, prev_b, {v, t});
  std::printf("predicted dynamic delay: %.1f ps\n", delay);
  if (tclk_text != nullptr) {
    const double tclk = std::atof(tclk_text);
    std::printf("at tclk = %.1f ps: %s\n", tclk,
                delay > tclk ? "TIMING ERROR" : "timing correct");
  }
  return 0;
}

int cmdCheck(int n_seeds, std::uint64_t base_seed) {
  // One context per FU so the per-corner delay caches are shared
  // across seeds (FuContext holds a mutex, hence the unique_ptrs).
  std::vector<std::unique_ptr<core::FuContext>> contexts;
  for (const circuits::FuKind kind : circuits::kAllFus) {
    contexts.push_back(std::make_unique<core::FuContext>(kind));
  }
  std::vector<std::pair<std::string, check::Property>> properties;
  properties.emplace_back("sim-vs-sta/random-netlist",
                          check::checkSimVsStaOnRandomNetlist);
  properties.emplace_back("sim-vs-sta/sensitized-chain",
                          check::checkSimMeetsStaOnChain);
  for (auto& context : contexts) {
    core::FuContext* fu = context.get();
    const std::string name(circuits::fuName(fu->kind()));
    properties.emplace_back(
        "sim-vs-sta/" + name,
        [fu](std::uint64_t seed, util::Rng& rng) {
          check::checkSimVsStaOnFu(*fu, seed, rng);
        });
    properties.emplace_back(
        "sim-vs-ref/" + name,
        [fu](std::uint64_t seed, util::Rng& rng) {
          check::checkSimVsReferenceOnFu(*fu, seed, rng);
        });
  }
  properties.emplace_back("model-round-trip", check::checkModelRoundTrip);
  properties.emplace_back("flat-forest/bit-identity",
                          check::checkFlatForestBitIdentity);
  properties.emplace_back("sweep/fault-tolerance",
                          check::checkSweepFaultTolerance);
  properties.emplace_back("serve/resilience", check::checkServeResilience);
  properties.emplace_back("fleet/resilience", check::checkFleetResilience);
  properties.emplace_back("dvfs/safety", check::checkDvfsSafety);
  properties.emplace_back("verify/bounds-containment",
                          check::checkVerifyBoundsContainment);
  properties.emplace_back("verify/certification",
                          check::checkVerifyCertification);
  if (util::envFlag("TEVOT_CHECK_FORCE_FAIL")) {
    // Internal self-test knob: a property that always fails, so the
    // exit-code taxonomy (3 = check failure) can be tested end to end.
    properties.emplace_back("self-test/forced-failure",
                            [](std::uint64_t, util::Rng&) {
                              check::expect(false, "forced failure");
                            });
  }

  bool ok = true;
  for (const auto& [name, property] : properties) {
    const check::PropertyResult result =
        check::forAllSeeds(base_seed, n_seeds, property);
    std::printf("%s\n", result.report(name).c_str());
    if (!result.ok) {
      std::printf("  reproduce: tevot_cli check 1 --seed %llu\n",
                  static_cast<unsigned long long>(result.failing_seed));
      ok = false;
    }
  }
  return ok ? kExitOk : kExitCheckFailed;
}

int cmdLint(int argc, char** argv, util::ThreadPool& pool) {
  std::vector<circuits::FuKind> kinds;
  bool all = false;
  std::string waiver_path;
  std::string json_path;
  std::string sdf_path;
  double budget_ps = 0.0;
  int grid_v = 3, grid_t = 3;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lint: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--all") {
      all = true;
    } else if (arg == "--waivers") {
      const char* v = value("--waivers");
      if (v == nullptr) return usage();
      waiver_path = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return usage();
      json_path = v;
    } else if (arg == "--sdf") {
      const char* v = value("--sdf");
      if (v == nullptr) return usage();
      sdf_path = v;
    } else if (arg == "--budget") {
      const char* v = value("--budget");
      if (v == nullptr) return usage();
      budget_ps = std::atof(v);
      if (budget_ps <= 0.0) return usage();
    } else if (arg == "--grid") {
      const char* v = value("--grid");
      if (v == nullptr || std::sscanf(v, "%dx%d", &grid_v, &grid_t) != 2 ||
          grid_v < 1 || grid_t < 1) {
        return usage();
      }
    } else {
      circuits::FuKind kind;
      if (!fuFromName(arg, kind)) return usage();
      kinds.push_back(kind);
    }
  }
  if (all) {
    if (!kinds.empty()) return usage();
    kinds.assign(circuits::kAllFus.begin(), circuits::kAllFus.end());
  }
  if (kinds.empty()) return usage();
  if (!sdf_path.empty() && kinds.size() != 1) {
    std::fprintf(stderr, "lint: --sdf applies to a single fu\n");
    return usage();
  }

  const liberty::CellLibrary library = liberty::CellLibrary::defaultLibrary();
  const liberty::VtModel vt_model;
  const std::vector<liberty::Corner> corners =
      core::OperatingGrid::paper().subsampled(grid_v, grid_t);
  const liberty::Corner nominal{vt_model.params().vnom,
                                vt_model.params().tnom_c};

  // Each FU lints into an indexed slot (rule execution inside runLint
  // is pool-parallel too), then slots are rendered in FU order — the
  // output is byte-identical for any --jobs value.
  struct FuLintOutput {
    std::string text;
    std::string json;
    bool clean = true;
  };
  std::vector<FuLintOutput> outputs(kinds.size());
  const auto lint_one = [&](std::size_t idx) {
    const netlist::Netlist nl = circuits::buildFu(kinds[idx]);
    // The SDF under test: an external file, or a write->parse round
    // trip of this netlist's own nominal-corner annotation (proving
    // the writer, the parser and the annotator agree end to end).
    liberty::CornerDelays sdf_delays;
    if (!sdf_path.empty()) {
      sdf_delays = sdf::parseSdfFile(sdf_path, nl);
    } else {
      const liberty::CornerDelays annotated =
          liberty::annotateCorner(nl, library, vt_model, nominal);
      sdf_delays = sdf::parseSdfString(sdf::toSdfString(nl, annotated), nl);
    }

    lint::LintContext ctx;
    ctx.netlist = &nl;
    ctx.library = &library;
    ctx.vt_model = &vt_model;
    ctx.corners = corners;
    ctx.sdf_delays = &sdf_delays;
    ctx.clock_budget_ps = budget_ps;

    lint::WaiverSet waivers;
    if (!waiver_path.empty()) {
      waivers = lint::WaiverSet::parseFile(waiver_path);
    }
    const lint::LintReport report = lint::runLint(ctx, &waivers, &pool);
    outputs[idx].text = report.toText();
    outputs[idx].json = report.toJson();
    outputs[idx].clean = report.clean();
  };
  if (kinds.size() > 1 && pool.threadCount() > 1) {
    pool.parallelFor(kinds.size(), lint_one);
  } else {
    for (std::size_t i = 0; i < kinds.size(); ++i) lint_one(i);
  }

  bool clean = true;
  std::string json;
  for (const FuLintOutput& out : outputs) {
    std::printf("%s", out.text.c_str());
    clean = clean && out.clean;
    if (!json.empty()) json += ",\n";
    json += out.json;
  }
  if (kinds.size() > 1) json = "[\n" + json + "]\n";
  if (json_path == "-") {
    std::printf("%s", json.c_str());
  } else if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "lint: cannot open %s: %s\n", json_path.c_str(),
                   std::strerror(errno));
      return kExitRuntime;
    }
    os << json;
    if (!os.flush()) {
      std::fprintf(stderr, "lint: cannot write %s: %s\n", json_path.c_str(),
                   std::strerror(errno));
      return kExitRuntime;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return clean ? kExitOk : kExitCheckFailed;
}

/// "0.85 V, 25 C" -> "0v85_25c" — the per-corner checkpoint key stem.
std::string cornerSlug(const liberty::Corner& corner) {
  const int centivolts = static_cast<int>(corner.voltage * 100.0 + 0.5);
  const int degrees = static_cast<int>(corner.temperature + 0.5);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%dv%02d_%dc", centivolts / 100,
                centivolts % 100, degrees);
  return buf;
}

int cmdSweep(int argc, char** argv, util::ThreadPool& pool) {
  // Positional: fu, cycles-per-corner. Everything else is flags.
  std::string fu;
  long cycles = -1;
  int grid_v = 3, grid_t = 3;
  std::uint64_t seed = 7;
  std::string report_path;
  dta::SweepOptions options;
  options.faults = &util::FaultInjector::global();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--out") {
      const char* v = value("--out");
      if (v == nullptr) return usage();
      options.checkpoint_dir = v;
    } else if (arg == "--grid") {
      const char* v = value("--grid");
      if (v == nullptr || std::sscanf(v, "%dx%d", &grid_v, &grid_t) != 2 ||
          grid_v < 1 || grid_t < 1) {
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = value("--seed");
      if (v == nullptr) return usage();
      seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--max-retries") {
      const char* v = value("--max-retries");
      if (v == nullptr) return usage();
      options.max_retries = static_cast<int>(std::atol(v));
      if (options.max_retries < 0) return usage();
    } else if (arg == "--backoff-ms") {
      const char* v = value("--backoff-ms");
      if (v == nullptr) return usage();
      options.backoff_ms = std::atof(v);
    } else if (arg == "--job-deadline") {
      const char* v = value("--job-deadline");
      if (v == nullptr) return usage();
      options.job_deadline_ms = std::atof(v);
    } else if (arg == "--fail-fast") {
      options.fail_fast = true;
    } else if (arg == "--report") {
      const char* v = value("--report");
      if (v == nullptr) return usage();
      report_path = v;
    } else if (fu.empty()) {
      fu = arg;
    } else if (cycles < 0) {
      cycles = std::atol(arg.c_str());
    } else {
      return usage();
    }
  }
  circuits::FuKind kind;
  if (fu.empty() || cycles < 2 || !fuFromName(fu, kind)) return usage();
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "sweep: --resume requires --out\n");
    return usage();
  }

  if (options.faults->armed()) {
    std::printf("faults armed: %s\n",
                options.faults->plan().spec().c_str());
  }

  // Cooperative interruption: the first SIGINT/SIGTERM stops new
  // corners from starting; the in-flight corner completes and flushes
  // its checkpoint so --resume always sees a consistent directory.
  util::SignalFlag stop{SIGINT, SIGTERM};
  options.stop_requested = [&stop] { return stop.raised(); };

  core::FuContext context(kind);
  const auto corners =
      core::OperatingGrid::paper().subsampled(grid_v, grid_t);
  // Workloads are drawn sequentially from one seed, so the job set is
  // identical across runs — the property --resume depends on.
  util::Rng rng(seed);
  std::vector<dta::Workload> workloads;
  workloads.reserve(corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    workloads.push_back(dta::randomWorkloadFor(
        kind, static_cast<std::size_t>(cycles), rng));
  }
  std::vector<dta::CharacterizeJob> jobs;
  jobs.reserve(corners.size());
  for (std::size_t c = 0; c < corners.size(); ++c) {
    dta::CharacterizeJob job =
        context.characterizeJob(corners[c], workloads[c]);
    job.name = fu + "_" + cornerSlug(corners[c]);
    jobs.push_back(std::move(job));
  }

  const dta::SweepResult result = dta::runSweep(jobs, pool, options);
  std::printf("%s", result.report.toText().c_str());
  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::fprintf(stderr, "sweep: cannot open %s: %s\n",
                   report_path.c_str(), std::strerror(errno));
      return kExitRuntime;
    }
    report << result.report.toText();
    std::printf("wrote %s\n", report_path.c_str());
  }
  if (stop.raised()) {
    std::printf(
        "sweep interrupted by signal %d; completed corners are "
        "checkpointed%s\n",
        stop.lastSignal(),
        options.checkpoint_dir.empty() ? "" : " — rerun with --resume");
    std::fflush(stdout);
    return kExitInterrupted;
  }
  return result.report.allOk() ? kExitOk : kExitRuntime;
}

// verify-model: interval certification over a trained model's whole
// feature domain (MV rule catalog, DESIGN.md §5h). Exit taxonomy
// matches lint: 0 clean, 3 unwaived error findings, 1/2 runtime/usage.
int cmdVerifyModel(int argc, char** argv) {
  std::string model_path;
  std::string waiver_path;
  std::string json_path;
  std::string cert_path;
  double tclk_ps = 0.0;
  long refine_budget = 4096;
  int grid_v = 0, grid_t = 0;  // 0 = the full paper grid corner set
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "verify-model: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--tclk") {
      const char* v = value("--tclk");
      if (v == nullptr) return usage();
      tclk_ps = std::atof(v);
      if (tclk_ps <= 0.0) return usage();
    } else if (arg == "--refine-budget") {
      const char* v = value("--refine-budget");
      if (v == nullptr) return usage();
      refine_budget = std::atol(v);
      if (refine_budget < 1) return usage();
    } else if (arg == "--waivers") {
      const char* v = value("--waivers");
      if (v == nullptr) return usage();
      waiver_path = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return usage();
      json_path = v;
    } else if (arg == "--cert") {
      const char* v = value("--cert");
      if (v == nullptr) return usage();
      cert_path = v;
    } else if (arg == "--grid") {
      const char* v = value("--grid");
      if (v == nullptr ||
          std::sscanf(v, "%dx%d", &grid_v, &grid_t) != 2 || grid_v < 1 ||
          grid_t < 1) {
        return usage();
      }
    } else if (model_path.empty() && arg[0] != '-') {
      model_path = arg;
    } else {
      return usage();
    }
  }
  if (model_path.empty()) return usage();
  if (!cert_path.empty() && tclk_ps <= 0.0) {
    std::fprintf(stderr, "verify-model: --cert requires --tclk\n");
    return usage();
  }

  const core::TevotModel model = core::TevotModel::load(model_path);
  verify::ModelVerifyContext ctx;
  ctx.model = &model;
  ctx.tclk_ps = tclk_ps;
  ctx.refine_budget = static_cast<std::size_t>(refine_budget);
  ctx.model_path = model_path;
  if (grid_v > 0) ctx.corners = ctx.grid.subsampled(grid_v, grid_t);
  lint::WaiverSet waivers;
  if (!waiver_path.empty()) {
    waivers = lint::WaiverSet::parseFile(waiver_path);
  }

  const verify::ModelVerifyResult result =
      verify::runModelVerify(ctx, &waivers);
  std::printf("%s", result.report.toText().c_str());
  const verify::SafeTclkCertificate& cert = result.certificate;
  std::printf(
      "guaranteed delay bound over the operating box: [%.3f, %.3f] ps\n",
      static_cast<double>(cert.bound_lo_ps),
      static_cast<double>(cert.bound_hi_ps));
  if (tclk_ps > 0.0) {
    std::printf("safe-tclk %.3f ps: %s\n", tclk_ps,
                cert.certified ? "CERTIFIED" : "NOT CERTIFIED");
  }

  const auto write_file = [](const std::string& path,
                             const std::string& body,
                             const char* what) -> bool {
    std::ofstream os(path);
    if (os) {
      os << body;
      os.flush();
    }
    if (!os) {
      std::fprintf(stderr, "verify-model: cannot write %s %s: %s\n", what,
                   path.c_str(), std::strerror(errno));
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (json_path == "-") {
    std::printf("%s\n", result.report.toJson().c_str());
  } else if (!json_path.empty()) {
    if (!write_file(json_path, result.report.toJson() + "\n", "report")) {
      return kExitRuntime;
    }
  }
  if (!cert_path.empty() &&
      !write_file(cert_path, cert.toJson() + "\n", "certificate")) {
    return kExitRuntime;
  }
  return result.report.clean() ? kExitOk : kExitCheckFailed;
}

int cmdServeCheck(int argc, char** argv) {
  int port = -1;
  std::string model_path;
  std::string fu;
  check::ServeDriveOptions options;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve-check: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      const char* v = value("--clients");
      if (v == nullptr) return usage();
      options.clients = static_cast<int>(std::atol(v));
    } else if (arg == "--requests") {
      const char* v = value("--requests");
      if (v == nullptr) return usage();
      options.requests_per_client = static_cast<int>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = value("--seed");
      if (v == nullptr) return usage();
      seed = std::strtoull(v, nullptr, 0);
    } else if (port < 0) {
      port = static_cast<int>(std::atol(arg.c_str()));
    } else if (model_path.empty()) {
      model_path = arg;
    } else if (fu.empty()) {
      fu = arg;
    } else {
      return usage();
    }
  }
  circuits::FuKind kind;
  if (port <= 0 || port > 65535 || model_path.empty() || fu.empty() ||
      !fuFromName(fu, kind) || options.clients < 1 ||
      options.requests_per_client < 1) {
    return usage();
  }
  const core::TevotModel reference = core::TevotModel::load(model_path);
  try {
    check::driveAndVerifyServer(reference, fu, port, seed, options);
  } catch (const check::PropertyViolation& violation) {
    std::fprintf(stderr, "serve-check: FAIL: %s\n", violation.what());
    return kExitCheckFailed;
  }
  std::printf("serve-check: ok (%d clients x %d requests, seed %llu)\n",
              options.clients, options.requests_per_client,
              static_cast<unsigned long long>(seed));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --jobs option (also honors TEVOT_JOBS) before
  // command dispatch so it can appear anywhere on the line.
  std::size_t jobs = 1;
  if (const char* env = std::getenv("TEVOT_JOBS")) {
    jobs = static_cast<std::size_t>(std::atol(env));
  }
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (i > 0 && std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atol(argv[i] + 7));
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    util::ThreadPool pool(jobs);
    if (command == "fu-list" && argc == 2) return cmdFuList();
    if (command == "export-verilog" && argc == 4) {
      return cmdExportVerilog(argv[2], argv[3]);
    }
    if (command == "export-lib" && argc == 3) return cmdExportLib(argv[2]);
    if (command == "sdf" && argc == 6) {
      return cmdSdf(argv[2], std::atof(argv[3]), std::atof(argv[4]),
                    argv[5]);
    }
    if (command == "sta" && argc == 5) {
      return cmdSta(argv[2], std::atof(argv[3]), std::atof(argv[4]));
    }
    if (command == "characterize" && (argc == 6 || argc == 7)) {
      return cmdCharacterize(argv[2], std::atof(argv[3]),
                             std::atof(argv[4]), std::atol(argv[5]),
                             argc == 7 ? argv[6] : nullptr);
    }
    if (command == "train" && (argc == 4 || argc == 5)) {
      return cmdTrain(argv[2], argv[3],
                      argc == 5 ? std::atol(argv[4]) : 1500, pool);
    }
    if (command == "predict" && (argc == 9 || argc == 10)) {
      return cmdPredict(argv[2], std::atof(argv[3]), std::atof(argv[4]),
                        parseWord(argv[5]), parseWord(argv[6]),
                        parseWord(argv[7]), parseWord(argv[8]),
                        argc == 10 ? argv[9] : nullptr);
    }
    if (command == "check") {
      int n_seeds = 25;
      std::uint64_t base_seed = check::kDefaultSeedBase;
      bool parsed = true;
      bool have_count = false;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          base_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (!have_count) {
          n_seeds = static_cast<int>(std::atol(argv[i]));
          have_count = true;
        } else {
          parsed = false;
        }
      }
      if (parsed && n_seeds > 0) return cmdCheck(n_seeds, base_seed);
      return usage();
    }
    if (command == "sweep") return cmdSweep(argc, argv, pool);
    if (command == "lint") return cmdLint(argc, argv, pool);
    if (command == "verify-model") return cmdVerifyModel(argc, argv);
    if (command == "serve-check") return cmdServeCheck(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tevot_cli: %s\n", error.what());
    return kExitRuntime;
  }
  return usage();
}

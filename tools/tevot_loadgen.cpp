// tevot_loadgen — open-loop load generator for tevot_serve and
// tevot_router (src/fleet/loadgen.hpp).
//
//   tevot_loadgen --port P [--fu NAME] [--duration-s S] [--rate-qps Q]
//                 [--arrival poisson|uniform|bursty] [--connections N]
//                 [--batch-fraction F] [--batch-tuples N]
//                 [--malformed-fraction F] [--deadline-ms MS]
//                 [--seed N] [--label TEXT] [--json PATH]
//
// Drives 127.0.0.1:P with a reproducible mixed storm (plain predicts,
// predictN batches, malformed lines) on an open-loop arrival schedule
// and prints the classified summary on stdout. --json writes the
// BENCH_fleet_loadgen.json payload (achieved QPS, p50/p95/p99,
// shed/deadline/error counts); default path BENCH_fleet_loadgen.json
// in the current directory when --json is given without a value
// elsewhere in CI.
//
// Exit codes: 0 storm completed (server answers, however degraded,
// are data, not failures), 1 nothing was ever answered, 2 usage
// error, 130 interrupted. SIGINT/SIGTERM stop the storm
// cooperatively: in-flight requests finish, the partial report is
// still printed — and flushed to --json with "interrupted": 1 — so a
// cut-short run leaves valid, classified data instead of nothing.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "fleet/loadgen.hpp"
#include "util/signal.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tevot_loadgen --port P [--fu NAME] [--duration-s S]\n"
      "                     [--rate-qps Q]\n"
      "                     [--arrival poisson|uniform|bursty]\n"
      "                     [--connections N] [--batch-fraction F]\n"
      "                     [--batch-tuples N] [--malformed-fraction F]\n"
      "                     [--deadline-ms MS] [--seed N] [--label TEXT]\n"
      "                     [--json PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tevot;

  fleet::LoadgenOptions options;
  std::string label = "default";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tevot_loadgen: %s needs a value\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--port") {
      if ((v = value()) == nullptr) return usage();
      options.port = static_cast<int>(std::atol(v));
      if (options.port <= 0 || options.port > 65535) return usage();
    } else if (arg == "--fu") {
      if ((v = value()) == nullptr) return usage();
      options.fu = v;
    } else if (arg == "--duration-s") {
      if ((v = value()) == nullptr) return usage();
      options.duration_s = std::atof(v);
    } else if (arg == "--rate-qps") {
      if ((v = value()) == nullptr) return usage();
      options.rate_qps = std::atof(v);
      if (options.rate_qps <= 0.0) return usage();
    } else if (arg == "--arrival") {
      if ((v = value()) == nullptr) return usage();
      if (!fleet::parseArrival(v, &options.arrival)) return usage();
    } else if (arg == "--connections") {
      if ((v = value()) == nullptr) return usage();
      options.connections = static_cast<int>(std::atol(v));
      if (options.connections <= 0) return usage();
    } else if (arg == "--batch-fraction") {
      if ((v = value()) == nullptr) return usage();
      options.batch_fraction = std::atof(v);
    } else if (arg == "--batch-tuples") {
      if ((v = value()) == nullptr) return usage();
      options.batch_tuples = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--malformed-fraction") {
      if ((v = value()) == nullptr) return usage();
      options.malformed_fraction = std::atof(v);
    } else if (arg == "--deadline-ms") {
      if ((v = value()) == nullptr) return usage();
      options.deadline_ms = std::atof(v);
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return usage();
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--label") {
      if ((v = value()) == nullptr) return usage();
      label = v;
    } else if (arg == "--json") {
      if ((v = value()) == nullptr) return usage();
      json_path = v;
    } else {
      std::fprintf(stderr, "tevot_loadgen: unknown option %s\n",
                   arg.c_str());
      return usage();
    }
  }
  if (options.port == 0) return usage();

  util::SignalFlag signals({SIGINT, SIGTERM});
  options.stop = [&signals] { return signals.raised(); };

  std::fprintf(stderr,
               "tevot_loadgen: %s storm, %.0f qps x %.1fs over %d "
               "connections (seed %llu)\n",
               fleet::arrivalName(options.arrival), options.rate_qps,
               options.duration_s, options.connections,
               static_cast<unsigned long long>(options.seed));
  const fleet::LoadgenReport report = fleet::runLoadgen(options);
  std::printf("tevot_loadgen: %s%s\n", report.summaryLine().c_str(),
              report.interrupted ? " (interrupted)" : "");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "tevot_loadgen: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    out << report.toJson(label, options);
    out.flush();
    std::fprintf(stderr, "tevot_loadgen: wrote %s\n", json_path.c_str());
  }

  if (report.interrupted) {
    std::fprintf(stderr, "tevot_loadgen: interrupted by signal %d\n",
                 signals.lastSignal());
    return 130;  // 128 + SIGINT, shell convention
  }
  if (report.responsesReceived() == 0) {
    std::fprintf(stderr, "tevot_loadgen: no responses at all\n");
    return 1;
  }
  return 0;
}

// tevot_goldens — regenerates or verifies the golden DTA traces in
// tests/golden/ (see src/check/golden.hpp for what a trace pins down).
//
//   tevot_goldens <golden-dir>          rewrite every golden trace
//   tevot_goldens <golden-dir> --check  strict comparison; exit 1 and
//                                       print the first divergence per
//                                       trace when anything drifted
//
// Regenerate (and review the diff!) only when a timing-relevant change
// is intentional; CI runs the --check mode.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "check/golden.hpp"

int main(int argc, char** argv) {
  bool check_mode = false;
  const char* dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_mode = true;
    } else if (dir == nullptr) {
      dir = argv[i];
    } else {
      dir = nullptr;
      break;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: tevot_goldens <golden-dir> [--check]\n");
    return 2;
  }

  using namespace tevot;
  bool ok = true;
  try {
    for (const check::GoldenSpec& spec : check::defaultGoldenSpecs()) {
      const std::string path =
          std::string(dir) + "/" + check::goldenFileName(spec);
      const std::string actual = check::renderGoldenTrace(spec);
      if (!check_mode) {
        check::writeTextFile(path, actual);
        std::printf("wrote %s\n", path.c_str());
        continue;
      }
      std::string expected;
      try {
        expected = check::readTextFile(path);
      } catch (const std::exception& error) {
        std::printf("FAIL %s: %s\n", path.c_str(), error.what());
        ok = false;
        continue;
      }
      const check::GoldenDiff diff =
          check::compareGoldenTrace(expected, actual);
      if (diff.match) {
        std::printf("ok   %s\n", path.c_str());
      } else {
        std::printf("FAIL %s: %s\n", path.c_str(),
                    diff.description.c_str());
        ok = false;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tevot_goldens: %s\n", error.what());
    return 1;
  }
  if (check_mode && !ok) {
    std::printf("golden traces drifted; regenerate with "
                "`tevot_goldens %s` only if the change is intended\n",
                dir);
  }
  return ok ? 0 : 1;
}

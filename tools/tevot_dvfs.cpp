// tevot_dvfs — closed-loop adaptive-clocking driver (src/dvfs/).
//
//   tevot_dvfs --cert-dir DIR (--model-dir DIR | --serve-port P)
//              [--fus a,b,...|--all] [--cycles N] [--window N]
//              [--seed N] [--guardband F] [--hysteresis F]
//              [--escape-budget N] [--deadline-ms MS] [--jobs N]
//              [--json PATH] [--trace-dir DIR] [--label TEXT]
//
// Runs the fault-tolerant DVFS controller over a seeded synthetic
// operand stream per FU: the model (in-process from --model-dir, or
// live over the wire against a tevot_serve on --serve-port) picks the
// per-window clock, every window is ground-truthed against the event
// simulator, and any degraded model answer falls back to the
// certified safe clock loaded from <cert-dir>/<fu>.cert.json (the
// `tevot_cli verify-model --cert` output). A missing or unusable
// certificate refuses adaptive mode for that FU — reported, never a
// crash.
//
// --json writes the machine-readable report (per-FU counters,
// throughput gain vs the worst-case clock); --trace-dir writes the
// per-window decision trace as <fu>.trace. Reports and traces are
// byte-identical across reruns with the same seed in in-process mode
// at any --jobs; with --serve-port the server's fault/request id
// space is shared across FUs, so exact trace reproducibility
// additionally requires --jobs 1.
//
// Exit codes: 0 adaptive clocking ran with zero unrecovered
// violations, 1 runtime failure (no FU could run), 2 usage error,
// 3 unrecovered violations (escapes) remain after recovery.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dvfs/run.hpp"
#include "tevot/model.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "verify/certificate_io.hpp"

namespace {

using namespace tevot;

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitEscapes = 3;

int usage() {
  std::fprintf(
      stderr,
      "usage: tevot_dvfs --cert-dir DIR (--model-dir DIR | "
      "--serve-port P)\n"
      "                  [--fus a,b,...|--all] [--cycles N] [--window N]\n"
      "                  [--seed N] [--guardband F] [--hysteresis F]\n"
      "                  [--escape-budget N] [--deadline-ms MS]\n"
      "                  [--jobs N] [--json PATH] [--trace-dir DIR]\n"
      "                  [--label TEXT]\n");
  return kExitUsage;
}

bool fuFromSlug(const std::string& slug, circuits::FuKind* out) {
  for (const circuits::FuKind kind : circuits::kAllFus) {
    if (slug == circuits::fuSlug(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<std::string> splitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_dir;
  std::string cert_dir;
  std::string json_path;
  std::string trace_dir;
  std::string label = "default";
  std::vector<std::string> fu_slugs = {"int_add"};
  dvfs::RunOptions options;
  std::size_t jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tevot_dvfs: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--model-dir") {
      if ((v = value()) == nullptr) return usage();
      model_dir = v;
    } else if (arg == "--cert-dir") {
      if ((v = value()) == nullptr) return usage();
      cert_dir = v;
    } else if (arg == "--serve-port") {
      if ((v = value()) == nullptr) return usage();
      options.serve_port = static_cast<int>(std::atol(v));
      if (options.serve_port <= 0 || options.serve_port > 65535) {
        return usage();
      }
    } else if (arg == "--fus") {
      if ((v = value()) == nullptr) return usage();
      fu_slugs = splitList(v);
      if (fu_slugs.empty()) return usage();
    } else if (arg == "--all") {
      fu_slugs.clear();
      for (const circuits::FuKind kind : circuits::kAllFus) {
        fu_slugs.emplace_back(circuits::fuSlug(kind));
      }
    } else if (arg == "--cycles") {
      if ((v = value()) == nullptr) return usage();
      options.stream.cycles = static_cast<std::size_t>(std::atoll(v));
      if (options.stream.cycles < 2) return usage();
    } else if (arg == "--window") {
      if ((v = value()) == nullptr) return usage();
      options.stream.window = static_cast<std::size_t>(std::atoll(v));
      if (options.stream.window == 0) return usage();
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return usage();
      options.stream.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--guardband") {
      if ((v = value()) == nullptr) return usage();
      options.controller.guardband = std::atof(v);
      if (options.controller.guardband < 0.0) return usage();
    } else if (arg == "--hysteresis") {
      if ((v = value()) == nullptr) return usage();
      options.controller.hysteresis = std::atof(v);
      if (options.controller.hysteresis < 0.0) return usage();
    } else if (arg == "--escape-budget") {
      if ((v = value()) == nullptr) return usage();
      options.controller.escape_budget =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      if ((v = value()) == nullptr) return usage();
      options.deadline_ms = std::atof(v);
      if (options.deadline_ms < 0.0) return usage();
    } else if (arg == "--jobs") {
      if ((v = value()) == nullptr) return usage();
      jobs = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--json") {
      if ((v = value()) == nullptr) return usage();
      json_path = v;
    } else if (arg == "--trace-dir") {
      if ((v = value()) == nullptr) return usage();
      trace_dir = v;
    } else if (arg == "--label") {
      if ((v = value()) == nullptr) return usage();
      label = v;
    } else {
      std::fprintf(stderr, "tevot_dvfs: unknown option %s\n", arg.c_str());
      return usage();
    }
  }
  if (cert_dir.empty()) {
    std::fprintf(stderr, "tevot_dvfs: --cert-dir is required\n");
    return usage();
  }
  if (model_dir.empty() && options.serve_port == 0) {
    std::fprintf(stderr,
                 "tevot_dvfs: need --model-dir (in-process) or "
                 "--serve-port (live)\n");
    return usage();
  }

  // Build the per-FU setups. Model-load failures in in-process mode
  // and certificate problems both degrade to a per-FU refusal.
  std::vector<dvfs::FuSetup> fus;
  std::vector<std::unique_ptr<core::TevotModel>> models;
  for (const std::string& slug : fu_slugs) {
    dvfs::FuSetup setup;
    if (!fuFromSlug(slug, &setup.kind)) {
      std::fprintf(stderr, "tevot_dvfs: unknown fu '%s'\n", slug.c_str());
      return usage();
    }
    setup.cert_status = verify::loadCertificateFile(
        cert_dir + "/" + slug + ".cert.json", &setup.cert);
    if (options.serve_port == 0) {
      try {
        models.push_back(std::make_unique<core::TevotModel>(
            core::TevotModel::load(model_dir + "/" + slug + ".model")));
        setup.model = models.back().get();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tevot_dvfs: %s: cannot load model: %s\n",
                     slug.c_str(), e.what());
        continue;
      }
    }
    fus.push_back(std::move(setup));
  }
  if (fus.empty()) {
    std::fprintf(stderr, "tevot_dvfs: no usable FU\n");
    return kExitRuntime;
  }

  util::ThreadPool pool(jobs);
  dvfs::RunReport run;
  try {
    run = dvfs::runDvfs(fus, options, pool);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tevot_dvfs: %s\n", e.what());
    return kExitRuntime;
  }

  std::uint64_t escapes = 0;
  std::size_t ran = 0;
  for (const dvfs::DvfsReport& report : run.fus) {
    if (!report.status.ok()) {
      std::printf("tevot_dvfs: %s: refused adaptive mode: %s\n",
                  report.fu.c_str(), report.status.message.c_str());
      continue;
    }
    ++ran;
    escapes += report.escapes;
    std::printf(
        "tevot_dvfs: %s: %zu windows (%zu adaptive, %zu fallback) "
        "gain %.3fx viol=%llu recovered=%llu escapes=%llu\n",
        report.fu.c_str(), report.windows, report.adaptive_windows,
        report.fallback_windows, report.gain(),
        static_cast<unsigned long long>(report.violations),
        static_cast<unsigned long long>(report.recovered),
        static_cast<unsigned long long>(report.escapes));
    if (!trace_dir.empty()) {
      const std::string path = trace_dir + "/" + report.fu + ".trace";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "tevot_dvfs: cannot write %s\n", path.c_str());
        return kExitRuntime;
      }
      out << report.trace;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "tevot_dvfs: cannot write %s\n",
                   json_path.c_str());
      return kExitRuntime;
    }
    out << run.toJson(label) << "\n";
    std::fprintf(stderr, "tevot_dvfs: wrote %s\n", json_path.c_str());
  }

  if (ran == 0) {
    std::fprintf(stderr, "tevot_dvfs: no FU ran adaptively\n");
    return kExitRuntime;
  }
  if (escapes > 0) {
    std::fprintf(stderr,
                 "tevot_dvfs: %llu unrecovered violation(s) escaped "
                 "recovery\n",
                 static_cast<unsigned long long>(escapes));
    return kExitEscapes;
  }
  return kExitOk;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/components.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/components.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/components.cpp.o.d"
  "/root/repo/src/circuits/fp_add.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_add.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_add.cpp.o.d"
  "/root/repo/src/circuits/fp_mul.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_mul.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_mul.cpp.o.d"
  "/root/repo/src/circuits/fp_ref.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_ref.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/fp_ref.cpp.o.d"
  "/root/repo/src/circuits/fu.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/fu.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/fu.cpp.o.d"
  "/root/repo/src/circuits/int_add.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/int_add.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/int_add.cpp.o.d"
  "/root/repo/src/circuits/int_mul.cpp" "src/circuits/CMakeFiles/tevot_circuits.dir/int_mul.cpp.o" "gcc" "src/circuits/CMakeFiles/tevot_circuits.dir/int_mul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tevot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tevot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

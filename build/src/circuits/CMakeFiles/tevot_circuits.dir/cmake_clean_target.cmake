file(REMOVE_RECURSE
  "libtevot_circuits.a"
)

# Empty compiler generated dependencies file for tevot_circuits.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_circuits.dir/components.cpp.o"
  "CMakeFiles/tevot_circuits.dir/components.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/fp_add.cpp.o"
  "CMakeFiles/tevot_circuits.dir/fp_add.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/fp_mul.cpp.o"
  "CMakeFiles/tevot_circuits.dir/fp_mul.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/fp_ref.cpp.o"
  "CMakeFiles/tevot_circuits.dir/fp_ref.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/fu.cpp.o"
  "CMakeFiles/tevot_circuits.dir/fu.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/int_add.cpp.o"
  "CMakeFiles/tevot_circuits.dir/int_add.cpp.o.d"
  "CMakeFiles/tevot_circuits.dir/int_mul.cpp.o"
  "CMakeFiles/tevot_circuits.dir/int_mul.cpp.o.d"
  "libtevot_circuits.a"
  "libtevot_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

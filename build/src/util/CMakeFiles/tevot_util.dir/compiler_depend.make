# Empty compiler generated dependencies file for tevot_util.
# This may be replaced when dependencies are built.

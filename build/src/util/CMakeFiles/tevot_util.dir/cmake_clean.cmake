file(REMOVE_RECURSE
  "CMakeFiles/tevot_util.dir/bitvec.cpp.o"
  "CMakeFiles/tevot_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/tevot_util.dir/env.cpp.o"
  "CMakeFiles/tevot_util.dir/env.cpp.o.d"
  "CMakeFiles/tevot_util.dir/log.cpp.o"
  "CMakeFiles/tevot_util.dir/log.cpp.o.d"
  "CMakeFiles/tevot_util.dir/rng.cpp.o"
  "CMakeFiles/tevot_util.dir/rng.cpp.o.d"
  "CMakeFiles/tevot_util.dir/stats.cpp.o"
  "CMakeFiles/tevot_util.dir/stats.cpp.o.d"
  "libtevot_util.a"
  "libtevot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

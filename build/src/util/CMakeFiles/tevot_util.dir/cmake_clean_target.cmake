file(REMOVE_RECURSE
  "libtevot_util.a"
)

file(REMOVE_RECURSE
  "libtevot_liberty.a"
)

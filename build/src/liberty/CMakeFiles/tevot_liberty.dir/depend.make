# Empty dependencies file for tevot_liberty.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/cell_library.cpp" "src/liberty/CMakeFiles/tevot_liberty.dir/cell_library.cpp.o" "gcc" "src/liberty/CMakeFiles/tevot_liberty.dir/cell_library.cpp.o.d"
  "/root/repo/src/liberty/corner.cpp" "src/liberty/CMakeFiles/tevot_liberty.dir/corner.cpp.o" "gcc" "src/liberty/CMakeFiles/tevot_liberty.dir/corner.cpp.o.d"
  "/root/repo/src/liberty/lib_format.cpp" "src/liberty/CMakeFiles/tevot_liberty.dir/lib_format.cpp.o" "gcc" "src/liberty/CMakeFiles/tevot_liberty.dir/lib_format.cpp.o.d"
  "/root/repo/src/liberty/vt_model.cpp" "src/liberty/CMakeFiles/tevot_liberty.dir/vt_model.cpp.o" "gcc" "src/liberty/CMakeFiles/tevot_liberty.dir/vt_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tevot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tevot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tevot_liberty.dir/cell_library.cpp.o"
  "CMakeFiles/tevot_liberty.dir/cell_library.cpp.o.d"
  "CMakeFiles/tevot_liberty.dir/corner.cpp.o"
  "CMakeFiles/tevot_liberty.dir/corner.cpp.o.d"
  "CMakeFiles/tevot_liberty.dir/lib_format.cpp.o"
  "CMakeFiles/tevot_liberty.dir/lib_format.cpp.o.d"
  "CMakeFiles/tevot_liberty.dir/vt_model.cpp.o"
  "CMakeFiles/tevot_liberty.dir/vt_model.cpp.o.d"
  "libtevot_liberty.a"
  "libtevot_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

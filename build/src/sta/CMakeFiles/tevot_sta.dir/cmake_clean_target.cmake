file(REMOVE_RECURSE
  "libtevot_sta.a"
)

# Empty dependencies file for tevot_sta.
# This may be replaced when dependencies are built.

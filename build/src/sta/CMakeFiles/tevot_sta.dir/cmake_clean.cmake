file(REMOVE_RECURSE
  "CMakeFiles/tevot_sta.dir/sta.cpp.o"
  "CMakeFiles/tevot_sta.dir/sta.cpp.o.d"
  "libtevot_sta.a"
  "libtevot_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtevot_netlist.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tevot_netlist.dir/cell.cpp.o"
  "CMakeFiles/tevot_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/tevot_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tevot_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/tevot_netlist.dir/verilog.cpp.o"
  "CMakeFiles/tevot_netlist.dir/verilog.cpp.o.d"
  "CMakeFiles/tevot_netlist.dir/wordbus.cpp.o"
  "CMakeFiles/tevot_netlist.dir/wordbus.cpp.o.d"
  "libtevot_netlist.a"
  "libtevot_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

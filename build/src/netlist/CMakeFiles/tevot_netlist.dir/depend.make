# Empty dependencies file for tevot_netlist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_sim.dir/timing_sim.cpp.o"
  "CMakeFiles/tevot_sim.dir/timing_sim.cpp.o.d"
  "CMakeFiles/tevot_sim.dir/vcd_dump.cpp.o"
  "CMakeFiles/tevot_sim.dir/vcd_dump.cpp.o.d"
  "libtevot_sim.a"
  "libtevot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

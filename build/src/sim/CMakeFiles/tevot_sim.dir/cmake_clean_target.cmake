file(REMOVE_RECURSE
  "libtevot_sim.a"
)

# Empty dependencies file for tevot_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtevot_dta.a"
)

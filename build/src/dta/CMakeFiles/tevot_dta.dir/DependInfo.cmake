
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dta/dta.cpp" "src/dta/CMakeFiles/tevot_dta.dir/dta.cpp.o" "gcc" "src/dta/CMakeFiles/tevot_dta.dir/dta.cpp.o.d"
  "/root/repo/src/dta/vcd_extract.cpp" "src/dta/CMakeFiles/tevot_dta.dir/vcd_extract.cpp.o" "gcc" "src/dta/CMakeFiles/tevot_dta.dir/vcd_extract.cpp.o.d"
  "/root/repo/src/dta/workload.cpp" "src/dta/CMakeFiles/tevot_dta.dir/workload.cpp.o" "gcc" "src/dta/CMakeFiles/tevot_dta.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuits/CMakeFiles/tevot_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tevot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vcd/CMakeFiles/tevot_vcd.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tevot_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tevot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tevot_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

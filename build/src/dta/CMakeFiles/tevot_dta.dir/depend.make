# Empty dependencies file for tevot_dta.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_dta.dir/dta.cpp.o"
  "CMakeFiles/tevot_dta.dir/dta.cpp.o.d"
  "CMakeFiles/tevot_dta.dir/vcd_extract.cpp.o"
  "CMakeFiles/tevot_dta.dir/vcd_extract.cpp.o.d"
  "CMakeFiles/tevot_dta.dir/workload.cpp.o"
  "CMakeFiles/tevot_dta.dir/workload.cpp.o.d"
  "libtevot_dta.a"
  "libtevot_dta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_dta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

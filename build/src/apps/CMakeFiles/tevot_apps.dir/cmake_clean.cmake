file(REMOVE_RECURSE
  "CMakeFiles/tevot_apps.dir/executor.cpp.o"
  "CMakeFiles/tevot_apps.dir/executor.cpp.o.d"
  "CMakeFiles/tevot_apps.dir/filters.cpp.o"
  "CMakeFiles/tevot_apps.dir/filters.cpp.o.d"
  "CMakeFiles/tevot_apps.dir/image.cpp.o"
  "CMakeFiles/tevot_apps.dir/image.cpp.o.d"
  "CMakeFiles/tevot_apps.dir/profile.cpp.o"
  "CMakeFiles/tevot_apps.dir/profile.cpp.o.d"
  "CMakeFiles/tevot_apps.dir/synth_images.cpp.o"
  "CMakeFiles/tevot_apps.dir/synth_images.cpp.o.d"
  "libtevot_apps.a"
  "libtevot_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

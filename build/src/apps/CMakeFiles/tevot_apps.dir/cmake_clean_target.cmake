file(REMOVE_RECURSE
  "libtevot_apps.a"
)

# Empty compiler generated dependencies file for tevot_apps.
# This may be replaced when dependencies are built.

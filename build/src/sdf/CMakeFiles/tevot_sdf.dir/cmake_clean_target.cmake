file(REMOVE_RECURSE
  "libtevot_sdf.a"
)

# Empty compiler generated dependencies file for tevot_sdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_sdf.dir/sdf.cpp.o"
  "CMakeFiles/tevot_sdf.dir/sdf.cpp.o.d"
  "libtevot_sdf.a"
  "libtevot_sdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_sdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tevot_core.dir/baselines.cpp.o"
  "CMakeFiles/tevot_core.dir/baselines.cpp.o.d"
  "CMakeFiles/tevot_core.dir/evaluate.cpp.o"
  "CMakeFiles/tevot_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/tevot_core.dir/features.cpp.o"
  "CMakeFiles/tevot_core.dir/features.cpp.o.d"
  "CMakeFiles/tevot_core.dir/model.cpp.o"
  "CMakeFiles/tevot_core.dir/model.cpp.o.d"
  "CMakeFiles/tevot_core.dir/operating_grid.cpp.o"
  "CMakeFiles/tevot_core.dir/operating_grid.cpp.o.d"
  "CMakeFiles/tevot_core.dir/pipeline.cpp.o"
  "CMakeFiles/tevot_core.dir/pipeline.cpp.o.d"
  "libtevot_core.a"
  "libtevot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

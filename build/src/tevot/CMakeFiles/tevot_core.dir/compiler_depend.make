# Empty compiler generated dependencies file for tevot_core.
# This may be replaced when dependencies are built.

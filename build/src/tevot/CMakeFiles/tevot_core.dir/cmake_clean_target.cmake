file(REMOVE_RECURSE
  "libtevot_core.a"
)

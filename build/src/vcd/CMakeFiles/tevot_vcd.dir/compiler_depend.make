# Empty compiler generated dependencies file for tevot_vcd.
# This may be replaced when dependencies are built.

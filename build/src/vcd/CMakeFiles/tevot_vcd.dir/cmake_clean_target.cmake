file(REMOVE_RECURSE
  "libtevot_vcd.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tevot_vcd.dir/vcd.cpp.o"
  "CMakeFiles/tevot_vcd.dir/vcd.cpp.o.d"
  "libtevot_vcd.a"
  "libtevot_vcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_vcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tevot_ml.dir/dataset.cpp.o"
  "CMakeFiles/tevot_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/tevot_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/knn.cpp.o"
  "CMakeFiles/tevot_ml.dir/knn.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/linear.cpp.o"
  "CMakeFiles/tevot_ml.dir/linear.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/metrics.cpp.o"
  "CMakeFiles/tevot_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/random_forest.cpp.o"
  "CMakeFiles/tevot_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/tevot_ml.dir/serialize.cpp.o"
  "CMakeFiles/tevot_ml.dir/serialize.cpp.o.d"
  "libtevot_ml.a"
  "libtevot_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

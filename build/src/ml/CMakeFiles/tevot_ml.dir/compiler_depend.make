# Empty compiler generated dependencies file for tevot_ml.
# This may be replaced when dependencies are built.

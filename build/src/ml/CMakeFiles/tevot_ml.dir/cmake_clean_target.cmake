file(REMOVE_RECURSE
  "libtevot_ml.a"
)

# Empty dependencies file for sdf_vcd_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdf_vcd_flow.dir/sdf_vcd_flow.cpp.o"
  "CMakeFiles/sdf_vcd_flow.dir/sdf_vcd_flow.cpp.o.d"
  "sdf_vcd_flow"
  "sdf_vcd_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdf_vcd_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for guardband_explorer.
# This may be replaced when dependencies are built.

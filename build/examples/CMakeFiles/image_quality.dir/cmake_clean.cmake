file(REMOVE_RECURSE
  "CMakeFiles/image_quality.dir/image_quality.cpp.o"
  "CMakeFiles/image_quality.dir/image_quality.cpp.o.d"
  "image_quality"
  "image_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

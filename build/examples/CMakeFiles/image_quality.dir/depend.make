# Empty dependencies file for image_quality.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tevot_cli.
# This may be replaced when dependencies are built.

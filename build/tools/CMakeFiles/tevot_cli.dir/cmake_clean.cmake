file(REMOVE_RECURSE
  "CMakeFiles/tevot_cli.dir/tevot_cli.cpp.o"
  "CMakeFiles/tevot_cli.dir/tevot_cli.cpp.o.d"
  "tevot_cli"
  "tevot_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

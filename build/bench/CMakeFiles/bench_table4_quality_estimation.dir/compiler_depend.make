# Empty compiler generated dependencies file for bench_table4_quality_estimation.
# This may be replaced when dependencies are built.

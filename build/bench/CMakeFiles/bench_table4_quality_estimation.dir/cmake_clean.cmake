file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_quality_estimation.dir/bench_table4_quality_estimation.cpp.o"
  "CMakeFiles/bench_table4_quality_estimation.dir/bench_table4_quality_estimation.cpp.o.d"
  "bench_table4_quality_estimation"
  "bench_table4_quality_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_quality_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_sobel_outputs.
# This may be replaced when dependencies are built.

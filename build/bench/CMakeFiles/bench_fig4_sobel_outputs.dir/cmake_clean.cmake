file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sobel_outputs.dir/bench_fig4_sobel_outputs.cpp.o"
  "CMakeFiles/bench_fig4_sobel_outputs.dir/bench_fig4_sobel_outputs.cpp.o.d"
  "bench_fig4_sobel_outputs"
  "bench_fig4_sobel_outputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sobel_outputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

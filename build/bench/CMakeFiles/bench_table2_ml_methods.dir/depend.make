# Empty dependencies file for bench_table2_ml_methods.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_speedup_vs_simulation.
# This may be replaced when dependencies are built.

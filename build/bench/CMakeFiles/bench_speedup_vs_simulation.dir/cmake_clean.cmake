file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_vs_simulation.dir/bench_speedup_vs_simulation.cpp.o"
  "CMakeFiles/bench_speedup_vs_simulation.dir/bench_speedup_vs_simulation.cpp.o.d"
  "bench_speedup_vs_simulation"
  "bench_speedup_vs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

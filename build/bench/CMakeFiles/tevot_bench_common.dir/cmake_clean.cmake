file(REMOVE_RECURSE
  "CMakeFiles/tevot_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/tevot_bench_common.dir/bench_common.cpp.o.d"
  "libtevot_bench_common.a"
  "libtevot_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tevot_bench_common.
# This may be replaced when dependencies are built.

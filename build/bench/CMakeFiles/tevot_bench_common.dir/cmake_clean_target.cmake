file(REMOVE_RECURSE
  "libtevot_bench_common.a"
)

# Empty dependencies file for bench_fig1_dynamic_delay.
# This may be replaced when dependencies are built.

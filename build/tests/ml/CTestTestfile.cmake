# CMake generated Testfile for 
# Source directory: /root/repo/tests/ml
# Build directory: /root/repo/build/tests/ml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ml/ml_dataset_test[1]_include.cmake")
include("/root/repo/build/tests/ml/ml_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/ml/ml_decision_tree_test[1]_include.cmake")
include("/root/repo/build/tests/ml/ml_random_forest_test[1]_include.cmake")
include("/root/repo/build/tests/ml/ml_knn_linear_test[1]_include.cmake")
include("/root/repo/build/tests/ml/ml_serialize_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/ml_random_forest_test.dir/random_forest_test.cpp.o"
  "CMakeFiles/ml_random_forest_test.dir/random_forest_test.cpp.o.d"
  "ml_random_forest_test"
  "ml_random_forest_test.pdb"
  "ml_random_forest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_random_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ml_knn_linear_test.dir/knn_linear_test.cpp.o"
  "CMakeFiles/ml_knn_linear_test.dir/knn_linear_test.cpp.o.d"
  "ml_knn_linear_test"
  "ml_knn_linear_test.pdb"
  "ml_knn_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_knn_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

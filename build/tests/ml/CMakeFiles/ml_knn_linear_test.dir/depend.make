# Empty dependencies file for ml_knn_linear_test.
# This may be replaced when dependencies are built.

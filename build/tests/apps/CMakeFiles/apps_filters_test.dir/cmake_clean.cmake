file(REMOVE_RECURSE
  "CMakeFiles/apps_filters_test.dir/filters_test.cpp.o"
  "CMakeFiles/apps_filters_test.dir/filters_test.cpp.o.d"
  "apps_filters_test"
  "apps_filters_test.pdb"
  "apps_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

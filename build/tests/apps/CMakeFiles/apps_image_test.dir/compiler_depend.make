# Empty compiler generated dependencies file for apps_image_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/apps_image_test.dir/image_test.cpp.o"
  "CMakeFiles/apps_image_test.dir/image_test.cpp.o.d"
  "apps_image_test"
  "apps_image_test.pdb"
  "apps_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/apps_executor_test.dir/executor_test.cpp.o"
  "CMakeFiles/apps_executor_test.dir/executor_test.cpp.o.d"
  "apps_executor_test"
  "apps_executor_test.pdb"
  "apps_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/apps_quality_test.dir/quality_test.cpp.o"
  "CMakeFiles/apps_quality_test.dir/quality_test.cpp.o.d"
  "apps_quality_test"
  "apps_quality_test.pdb"
  "apps_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for liberty_lib_format_test.

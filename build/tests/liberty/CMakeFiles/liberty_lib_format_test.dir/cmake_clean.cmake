file(REMOVE_RECURSE
  "CMakeFiles/liberty_lib_format_test.dir/lib_format_test.cpp.o"
  "CMakeFiles/liberty_lib_format_test.dir/lib_format_test.cpp.o.d"
  "liberty_lib_format_test"
  "liberty_lib_format_test.pdb"
  "liberty_lib_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_lib_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/liberty_vt_model_test.dir/vt_model_test.cpp.o"
  "CMakeFiles/liberty_vt_model_test.dir/vt_model_test.cpp.o.d"
  "liberty_vt_model_test"
  "liberty_vt_model_test.pdb"
  "liberty_vt_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_vt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for liberty_vt_model_test.
# This may be replaced when dependencies are built.

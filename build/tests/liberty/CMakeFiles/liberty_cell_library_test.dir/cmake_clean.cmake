file(REMOVE_RECURSE
  "CMakeFiles/liberty_cell_library_test.dir/cell_library_test.cpp.o"
  "CMakeFiles/liberty_cell_library_test.dir/cell_library_test.cpp.o.d"
  "liberty_cell_library_test"
  "liberty_cell_library_test.pdb"
  "liberty_cell_library_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_cell_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

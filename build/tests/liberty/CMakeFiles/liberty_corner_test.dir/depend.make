# Empty dependencies file for liberty_corner_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/liberty_corner_test.dir/corner_test.cpp.o"
  "CMakeFiles/liberty_corner_test.dir/corner_test.cpp.o.d"
  "liberty_corner_test"
  "liberty_corner_test.pdb"
  "liberty_corner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_corner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/liberty
# Build directory: /root/repo/build/tests/liberty
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/liberty/liberty_vt_model_test[1]_include.cmake")
include("/root/repo/build/tests/liberty/liberty_cell_library_test[1]_include.cmake")
include("/root/repo/build/tests/liberty/liberty_corner_test[1]_include.cmake")
include("/root/repo/build/tests/liberty/liberty_lib_format_test[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/tests/sta
# Build directory: /root/repo/build/tests/sta
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sta/sta_sta_test[1]_include.cmake")

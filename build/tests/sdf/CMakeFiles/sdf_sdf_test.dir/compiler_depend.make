# Empty compiler generated dependencies file for sdf_sdf_test.
# This may be replaced when dependencies are built.

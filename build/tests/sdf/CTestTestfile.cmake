# CMake generated Testfile for 
# Source directory: /root/repo/tests/sdf
# Build directory: /root/repo/build/tests/sdf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sdf/sdf_sdf_test[1]_include.cmake")

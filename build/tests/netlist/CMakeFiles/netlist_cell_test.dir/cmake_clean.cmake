file(REMOVE_RECURSE
  "CMakeFiles/netlist_cell_test.dir/cell_test.cpp.o"
  "CMakeFiles/netlist_cell_test.dir/cell_test.cpp.o.d"
  "netlist_cell_test"
  "netlist_cell_test.pdb"
  "netlist_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

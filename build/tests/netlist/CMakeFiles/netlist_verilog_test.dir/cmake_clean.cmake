file(REMOVE_RECURSE
  "CMakeFiles/netlist_verilog_test.dir/verilog_test.cpp.o"
  "CMakeFiles/netlist_verilog_test.dir/verilog_test.cpp.o.d"
  "netlist_verilog_test"
  "netlist_verilog_test.pdb"
  "netlist_verilog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_verilog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

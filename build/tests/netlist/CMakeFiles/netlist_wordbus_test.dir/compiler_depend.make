# Empty compiler generated dependencies file for netlist_wordbus_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/netlist_wordbus_test.dir/wordbus_test.cpp.o"
  "CMakeFiles/netlist_wordbus_test.dir/wordbus_test.cpp.o.d"
  "netlist_wordbus_test"
  "netlist_wordbus_test.pdb"
  "netlist_wordbus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_wordbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/netlist
# Build directory: /root/repo/build/tests/netlist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/netlist/netlist_cell_test[1]_include.cmake")
include("/root/repo/build/tests/netlist/netlist_netlist_test[1]_include.cmake")
include("/root/repo/build/tests/netlist/netlist_wordbus_test[1]_include.cmake")
include("/root/repo/build/tests/netlist/netlist_verilog_test[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vcd/vcd_test.cpp" "tests/vcd/CMakeFiles/vcd_vcd_test.dir/vcd_test.cpp.o" "gcc" "tests/vcd/CMakeFiles/vcd_vcd_test.dir/vcd_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/tevot_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tevot/CMakeFiles/tevot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tevot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dta/CMakeFiles/tevot_dta.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/tevot_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tevot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vcd/CMakeFiles/tevot_vcd.dir/DependInfo.cmake"
  "/root/repo/build/src/sdf/CMakeFiles/tevot_sdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tevot_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tevot_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tevot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tevot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

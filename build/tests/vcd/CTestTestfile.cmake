# CMake generated Testfile for 
# Source directory: /root/repo/tests/vcd
# Build directory: /root/repo/build/tests/vcd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vcd/vcd_vcd_test[1]_include.cmake")

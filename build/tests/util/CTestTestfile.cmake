# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util/util_bitvec_test[1]_include.cmake")
include("/root/repo/build/tests/util/util_env_test[1]_include.cmake")

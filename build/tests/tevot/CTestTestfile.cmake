# CMake generated Testfile for 
# Source directory: /root/repo/tests/tevot
# Build directory: /root/repo/build/tests/tevot
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tevot/tevot_operating_grid_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_features_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_model_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_evaluate_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/tevot/tevot_file_flow_test[1]_include.cmake")

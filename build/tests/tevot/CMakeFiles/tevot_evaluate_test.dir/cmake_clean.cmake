file(REMOVE_RECURSE
  "CMakeFiles/tevot_evaluate_test.dir/evaluate_test.cpp.o"
  "CMakeFiles/tevot_evaluate_test.dir/evaluate_test.cpp.o.d"
  "tevot_evaluate_test"
  "tevot_evaluate_test.pdb"
  "tevot_evaluate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_evaluate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

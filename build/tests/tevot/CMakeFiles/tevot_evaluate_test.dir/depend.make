# Empty dependencies file for tevot_evaluate_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_features_test.dir/features_test.cpp.o"
  "CMakeFiles/tevot_features_test.dir/features_test.cpp.o.d"
  "tevot_features_test"
  "tevot_features_test.pdb"
  "tevot_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

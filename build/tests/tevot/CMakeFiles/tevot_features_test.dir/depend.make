# Empty dependencies file for tevot_features_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_model_test.dir/model_test.cpp.o"
  "CMakeFiles/tevot_model_test.dir/model_test.cpp.o.d"
  "tevot_model_test"
  "tevot_model_test.pdb"
  "tevot_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tevot_model_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tevot_end_to_end_test.dir/end_to_end_test.cpp.o"
  "CMakeFiles/tevot_end_to_end_test.dir/end_to_end_test.cpp.o.d"
  "tevot_end_to_end_test"
  "tevot_end_to_end_test.pdb"
  "tevot_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tevot_operating_grid_test.dir/operating_grid_test.cpp.o"
  "CMakeFiles/tevot_operating_grid_test.dir/operating_grid_test.cpp.o.d"
  "tevot_operating_grid_test"
  "tevot_operating_grid_test.pdb"
  "tevot_operating_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_operating_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

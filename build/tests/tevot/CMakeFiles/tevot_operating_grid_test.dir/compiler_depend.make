# Empty compiler generated dependencies file for tevot_operating_grid_test.
# This may be replaced when dependencies are built.

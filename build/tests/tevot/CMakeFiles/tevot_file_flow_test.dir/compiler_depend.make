# Empty compiler generated dependencies file for tevot_file_flow_test.
# This may be replaced when dependencies are built.

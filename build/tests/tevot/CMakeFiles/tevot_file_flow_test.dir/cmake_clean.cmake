file(REMOVE_RECURSE
  "CMakeFiles/tevot_file_flow_test.dir/file_flow_test.cpp.o"
  "CMakeFiles/tevot_file_flow_test.dir/file_flow_test.cpp.o.d"
  "tevot_file_flow_test"
  "tevot_file_flow_test.pdb"
  "tevot_file_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_file_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

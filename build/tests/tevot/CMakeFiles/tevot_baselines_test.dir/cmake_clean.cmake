file(REMOVE_RECURSE
  "CMakeFiles/tevot_baselines_test.dir/baselines_test.cpp.o"
  "CMakeFiles/tevot_baselines_test.dir/baselines_test.cpp.o.d"
  "tevot_baselines_test"
  "tevot_baselines_test.pdb"
  "tevot_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tevot_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

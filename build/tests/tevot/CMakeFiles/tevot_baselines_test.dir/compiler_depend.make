# Empty compiler generated dependencies file for tevot_baselines_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests/circuits
# Build directory: /root/repo/build/tests/circuits
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/circuits/circuits_components_test[1]_include.cmake")
include("/root/repo/build/tests/circuits/circuits_int_fu_test[1]_include.cmake")
include("/root/repo/build/tests/circuits/circuits_fp_fu_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/circuits_components_test.dir/components_test.cpp.o"
  "CMakeFiles/circuits_components_test.dir/components_test.cpp.o.d"
  "circuits_components_test"
  "circuits_components_test.pdb"
  "circuits_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

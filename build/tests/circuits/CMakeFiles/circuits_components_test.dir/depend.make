# Empty dependencies file for circuits_components_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for circuits_int_fu_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for circuits_fp_fu_test.
# This may be replaced when dependencies are built.

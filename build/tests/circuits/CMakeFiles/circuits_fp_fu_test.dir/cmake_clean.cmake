file(REMOVE_RECURSE
  "CMakeFiles/circuits_fp_fu_test.dir/fp_fu_test.cpp.o"
  "CMakeFiles/circuits_fp_fu_test.dir/fp_fu_test.cpp.o.d"
  "circuits_fp_fu_test"
  "circuits_fp_fu_test.pdb"
  "circuits_fp_fu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_fp_fu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sim_random_netlist_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sim_random_netlist_fuzz_test.dir/random_netlist_fuzz_test.cpp.o"
  "CMakeFiles/sim_random_netlist_fuzz_test.dir/random_netlist_fuzz_test.cpp.o.d"
  "sim_random_netlist_fuzz_test"
  "sim_random_netlist_fuzz_test.pdb"
  "sim_random_netlist_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_random_netlist_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

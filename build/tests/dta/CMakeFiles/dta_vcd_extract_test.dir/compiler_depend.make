# Empty compiler generated dependencies file for dta_vcd_extract_test.
# This may be replaced when dependencies are built.

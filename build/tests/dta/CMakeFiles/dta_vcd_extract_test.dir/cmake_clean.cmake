file(REMOVE_RECURSE
  "CMakeFiles/dta_vcd_extract_test.dir/vcd_extract_test.cpp.o"
  "CMakeFiles/dta_vcd_extract_test.dir/vcd_extract_test.cpp.o.d"
  "dta_vcd_extract_test"
  "dta_vcd_extract_test.pdb"
  "dta_vcd_extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_vcd_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dta_workload_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dta_workload_test.dir/workload_test.cpp.o"
  "CMakeFiles/dta_workload_test.dir/workload_test.cpp.o.d"
  "dta_workload_test"
  "dta_workload_test.pdb"
  "dta_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/dta
# Build directory: /root/repo/build/tests/dta
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dta/dta_workload_test[1]_include.cmake")
include("/root/repo/build/tests/dta/dta_dta_test[1]_include.cmake")
include("/root/repo/build/tests/dta/dta_vcd_extract_test[1]_include.cmake")
